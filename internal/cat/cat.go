// Package cat implements the fragment of the .cat model-description
// language used by the paper (Sec. 5.2, Figs. 15-16): let bindings
// (including parameterised ones like "let rmo(fence) = ..."), union "|",
// intersection "&", difference "\", application of relation-valued
// functions and of the built-in event-kind filters WW/WR/RW/RR, and the
// checks "acyclic e as name", "irreflexive e as name" and "empty e as
// name".
//
// A compiled model is evaluated against an environment of base relations
// (built by package core from an axiom.Execution); evaluation yields one
// result per check.
package cat

import (
	"fmt"
	"strings"

	"github.com/weakgpu/gpulitmus/internal/axiom"
)

// Value is a runtime value of the .cat language: a relation or a function
// from relations to relations.
type Value interface{ isValue() }

// RelValue wraps an axiom.Rel.
type RelValue struct{ Rel axiom.Rel }

func (RelValue) isValue() {}

// FuncValue is a function over relations: either a builtin (like WW) or a
// parameterised let.
type FuncValue struct {
	Name   string
	Params []string
	Body   Expr
	Env    *Env                             // closure environment (nil for builtins)
	Fn     func(args []axiom.Rel) axiom.Rel // non-nil for builtins
	Arity  int                              // builtin argument count (-1 disables checking)
}

func (FuncValue) isValue() {}

// Env is a lexically scoped environment.
type Env struct {
	parent *Env
	vars   map[string]Value
}

// NewEnv returns an empty top-level environment.
func NewEnv() *Env { return &Env{vars: make(map[string]Value)} }

// child returns a new scope on top of e.
func (e *Env) child() *Env { return &Env{parent: e, vars: make(map[string]Value)} }

// Bind sets name to v in this scope.
func (e *Env) Bind(name string, v Value) { e.vars[name] = v }

// BindRel binds a relation.
func (e *Env) BindRel(name string, r axiom.Rel) { e.Bind(name, RelValue{Rel: r}) }

// BindFunc binds a builtin function taking exactly arity relations; calls
// with any other argument count are evaluation errors (pass -1 to disable
// the check).
func (e *Env) BindFunc(name string, arity int, fn func(args []axiom.Rel) axiom.Rel) {
	e.Bind(name, FuncValue{Name: name, Fn: fn, Arity: arity})
}

// Lookup resolves a name through the scope chain.
func (e *Env) Lookup(name string) (Value, bool) {
	for s := e; s != nil; s = s.parent {
		if v, ok := s.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

// CheckKind is the kind of constraint a model imposes.
type CheckKind int

// Check kinds.
const (
	Acyclic CheckKind = iota
	Irreflexive
	Empty
)

// String returns the .cat keyword.
func (k CheckKind) String() string {
	switch k {
	case Acyclic:
		return "acyclic"
	case Irreflexive:
		return "irreflexive"
	case Empty:
		return "empty"
	default:
		return fmt.Sprintf("CheckKind(%d)", int(k))
	}
}

// CheckResult is the outcome of one model check on one execution.
type CheckResult struct {
	Name string
	Kind CheckKind
	OK   bool
	Rel  axiom.Rel // the evaluated relation (for diagnostics)
}

// String renders "name: ok" or "name: violated".
func (r CheckResult) String() string {
	state := "ok"
	if !r.OK {
		state = "violated"
	}
	return fmt.Sprintf("%s: %s", r.Name, state)
}

// Results is the list of check outcomes for one execution.
type Results []CheckResult

// Allowed reports whether every check passed: the execution is allowed by
// the model.
func (rs Results) Allowed() bool {
	for _, r := range rs {
		if !r.OK {
			return false
		}
	}
	return true
}

// Failed returns the names of violated checks.
func (rs Results) Failed() []string {
	var names []string
	for _, r := range rs {
		if !r.OK {
			names = append(names, r.Name)
		}
	}
	return names
}

// String joins the individual results.
func (rs Results) String() string {
	parts := make([]string, len(rs))
	for i, r := range rs {
		parts[i] = r.String()
	}
	return strings.Join(parts, ", ")
}
