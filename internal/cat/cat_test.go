package cat

import (
	"strings"
	"testing"

	"github.com/weakgpu/gpulitmus/internal/axiom"
)

func TestParseFig15(t *testing.T) {
	src := `RMO
(* comment *)
let com = rf | co | fr
let po-loc-llh =
  WW(po-loc) | WR(po-loc) | RW(po-loc)
acyclic (po-loc-llh | com) as sc-per-loc-llh
let dp = addr | data | ctrl
acyclic (dp | rf) as no-thin-air
let rmo(fence) = dp | fence | rfe | co | fr
`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "RMO" {
		t.Errorf("Name = %q", m.Name)
	}
	if len(m.Stmts) != 6 {
		t.Fatalf("Stmts = %d, want 6", len(m.Stmts))
	}
	if l, ok := m.Stmts[5].(Let); !ok || l.Name != "rmo" || len(l.Params) != 1 || l.Params[0] != "fence" {
		t.Errorf("parameterised let wrong: %+v", m.Stmts[5])
	}
	if c, ok := m.Stmts[2].(Check); !ok || c.Kind != Acyclic || c.Name != "sc-per-loc-llh" {
		t.Errorf("check wrong: %+v", m.Stmts[2])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"let",
		"let x",
		"let x = ",
		"acyclic x",
		"acyclic x as",
		"let x = y | ",
		"let x = (y",
		"let f( = y",
		"(* unterminated",
		"let x = let",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	src := `M
let a = x | y & z
let f(p, q) = p & q \ x
acyclic f(a, y) as check1
irreflexive a as check2
empty x & y as check3
`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	re, err := Parse(m.String())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, m)
	}
	if re.String() != m.String() {
		t.Errorf("round trip:\n%s\nvs\n%s", m, re)
	}
}

func evalModel(t *testing.T, src string, env *Env) Results {
	t.Helper()
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Eval(env)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestEvalBasics(t *testing.T) {
	env := NewEnv()
	env.BindRel("a", axiom.FromPairs([2]axiom.EventID{0, 1}))
	env.BindRel("b", axiom.FromPairs([2]axiom.EventID{1, 0}))

	// a | b has a cycle; a alone does not.
	res := evalModel(t, "acyclic a as only-a\nacyclic a | b as both\n", env)
	if !res[0].OK {
		t.Error("a alone is acyclic")
	}
	if res[1].OK {
		t.Error("a | b has a 0-1-0 cycle")
	}
	if res.Allowed() {
		t.Error("Allowed must be false when a check fails")
	}
	if len(res.Failed()) != 1 || res.Failed()[0] != "both" {
		t.Errorf("Failed = %v", res.Failed())
	}
}

func TestEvalIntersectionAndDiff(t *testing.T) {
	env := NewEnv()
	env.BindRel("a", axiom.FromPairs([2]axiom.EventID{0, 1}, [2]axiom.EventID{1, 0}))
	env.BindRel("b", axiom.FromPairs([2]axiom.EventID{0, 1}))
	res := evalModel(t, `
let c = a & b
acyclic c as inter-check
let d = a \ b
acyclic d as diff-check
empty a \ a as empty-check
`, env)
	for _, r := range res {
		if !r.OK {
			t.Errorf("%s should pass", r.Name)
		}
	}
}

func TestEvalParameterisedLet(t *testing.T) {
	env := NewEnv()
	env.BindRel("x", axiom.FromPairs([2]axiom.EventID{0, 1}))
	env.BindRel("y", axiom.FromPairs([2]axiom.EventID{1, 2}))
	res := evalModel(t, `
let join(p, q) = p | q
acyclic join(x, y) as j
`, env)
	if !res[0].OK {
		t.Error("x|y is acyclic")
	}
	if res[0].Rel.Size() != 2 {
		t.Errorf("evaluated relation size = %d", res[0].Rel.Size())
	}
}

func TestEvalUnboundName(t *testing.T) {
	m := MustParse("acyclic nosuch as c")
	if _, err := m.Eval(NewEnv()); err == nil || !strings.Contains(err.Error(), "unbound") {
		t.Errorf("expected unbound-name error, got %v", err)
	}
}

func TestEvalArityMismatch(t *testing.T) {
	env := NewEnv()
	env.BindRel("x", axiom.NewRel())
	m := MustParse("let f(a, b) = a | b\nacyclic f(x) as c")
	if _, err := m.Eval(env); err == nil {
		t.Error("expected arity error")
	}
}

func TestEvalShadowing(t *testing.T) {
	// A let can rebind a name; later statements see the newer binding.
	env := NewEnv()
	env.BindRel("a", axiom.FromPairs([2]axiom.EventID{0, 1}, [2]axiom.EventID{1, 0}))
	res := evalModel(t, `
let a = a & a
let a = a \ a
empty a as rebound
`, env)
	if !res[0].OK {
		t.Error("rebound a should be empty")
	}
}

func TestIrreflexiveCheck(t *testing.T) {
	env := NewEnv()
	env.BindRel("r", axiom.FromPairs([2]axiom.EventID{2, 2}))
	res := evalModel(t, "irreflexive r as irr", env)
	if res[0].OK {
		t.Error("self-pair must fail irreflexive")
	}
}

func TestCommentStyles(t *testing.T) {
	src := `M
(* block
   comment *)
let a = x // line comment
acyclic a as c
`
	env := NewEnv()
	env.BindRel("x", axiom.NewRel())
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Eval(env); err != nil {
		t.Fatal(err)
	}
}

func TestPrecedence(t *testing.T) {
	// "a | b & c" must parse as "a | (b & c)".
	env := NewEnv()
	env.BindRel("a", axiom.FromPairs([2]axiom.EventID{0, 1}))
	env.BindRel("b", axiom.FromPairs([2]axiom.EventID{1, 2}))
	env.BindRel("c", axiom.FromPairs([2]axiom.EventID{5, 6}))
	res := evalModel(t, "let u = a | b & c\nacyclic u as chk", env)
	// b & c is empty, so u == a with 1 pair.
	if res[0].Rel.Size() != 1 {
		t.Errorf("precedence wrong: |u| = %d, want 1", res[0].Rel.Size())
	}
}
