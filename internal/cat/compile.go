package cat

import (
	"fmt"
	"sync"
	"time"

	"github.com/weakgpu/gpulitmus/internal/axiom"
	"github.com/weakgpu/gpulitmus/internal/obs"
	"github.com/weakgpu/gpulitmus/internal/ptx"
)

// This file lowers a parsed model to a flat instruction program over
// numbered relation slots, so that per-execution evaluation — the hot loop
// of every verdict — is a tight interpreter over opcodes instead of an AST
// walk with environment lookups. Model-local lets become slot assignments,
// model-local functions are inlined at their call sites (matching the
// interpreter's call-time name resolution), and only the base-environment
// relations (po, rf, co, ...) and builtins (WW, ...) remain symbolic: they
// are resolved once per Run, not once per expression node.
//
// Slots are single-assignment within a run, which makes scratch reuse
// trivial: a pooled Scratch keeps each slot's bitset storage between runs,
// so a steady-state evaluation allocates only the per-check result
// relations.

// opcode is a compiled relation operation.
type opcode int

const (
	opUnion opcode = iota // dst = a | b
	opInter               // dst = a & b
	opDiff                // dst = a \ b
	opCall                // dst = fns[fn](args...) — base-env function
)

// insn computes one slot from earlier slots.
type insn struct {
	op   opcode
	dst  int
	a, b int   // operand slots (opUnion/opInter/opDiff)
	fn   int   // index into the program's free functions (opCall)
	args []int // argument slots (opCall)
}

// progCheck is a compiled "acyclic/irreflexive/empty ... as name".
type progCheck struct {
	name string
	kind CheckKind
	slot int
}

// freeRel is a base-environment relation referenced by the model; it is
// resolved from the Env once per run into its input slot.
type freeRel struct {
	name string
	slot int
}

// Program is a model compiled to slots and opcodes. It is safe for
// concurrent Run calls: per-run state lives in a pooled Scratch.
type Program struct {
	model    *Model
	freeRels []freeRel
	freeFns  []string // base-environment functions, resolved per run
	insns    []insn
	checks   []progCheck
	nslots   int

	// Skeleton-constant split of the exec fast path (RunExec*): the const
	// halves depend only on an execution's skeleton (events, po, deps,
	// membar, scopes), so a scratch that just evaluated another rf/co
	// completion of the same skeleton skips them entirely — e.g. the
	// cta-fence/gl-fence/sys-fence unions of Fig. 16 and the WW/WR/RW
	// po-loc filters of Fig. 15 are computed once per skeleton, not once
	// per execution. Slot single-assignment makes the split sound: const
	// insns read only const slots, and var insns never write them.
	constFreeRels []freeRel
	varFreeRels   []freeRel
	constInsns    []insn
	varInsns      []insn

	pool sync.Pool // *Scratch
}

// Scratch is the reusable per-run state of a Program: slot storage, the
// resolved base-environment functions, and argument/result buffers.
type Scratch struct {
	slots  []axiom.Rel
	fns    []FuncValue
	args   []axiom.Rel
	checks []axiom.Rel

	// co and fr are scratch-owned storage for the two derived relations
	// that vary per execution: the exec fast path rebuilds them in place
	// (axiom.SetCoRel/SetFR) instead of allocating via the execution's
	// lazy memo, the last steady-state allocations on the verdict path.
	co axiom.Rel
	fr axiom.Rel

	// skel is the axiom.Execution.SkeletonKey of the execution whose
	// skeleton-constant slots currently populate this scratch; nil when
	// none do (fresh scratch, keyless execution, or a failed load).
	skel any

	// tr, when non-nil, accounts RunExec/RunExecVerdict time to
	// obs.PhaseEval. The verdict drivers attach the request's trace to
	// each worker's scratch; untraced scratches pay one nil test per
	// execution.
	tr *obs.Trace
}

// SetTracer attaches tr to the scratch: subsequent RunExec and
// RunExecVerdict calls with this scratch account their time to
// obs.PhaseEval on it. A nil tr (the default) disables the accounting.
func (sc *Scratch) SetTracer(tr *obs.Trace) { sc.tr = tr }

// Compile lowers the model to a Program. The result is memoized on the
// Model, so repeated Compile (and hence Eval) calls share one program.
func (m *Model) Compile() (*Program, error) {
	m.compileOnce.Do(func() { m.prog, m.compileErr = compileModel(m) })
	return m.prog, m.compileErr
}

// MustCompile compiles and panics on error; for embedded model sources.
func (m *Model) MustCompile() *Program {
	p, err := m.Compile()
	if err != nil {
		panic(err)
	}
	return p
}

// maxInlineDepth bounds function inlining; the interpreter would overflow
// the stack on such (self-recursive) models, the compiler reports an error.
const maxInlineDepth = 64

// binding is a compile-time name binding: a slot for relations, a
// definition for model-local functions.
type binding struct {
	slot int
	fn   *Let // non-nil for model-local functions
}

type compiler struct {
	p       *Program
	bind    map[string]binding // model-level names, in statement order
	freeRel map[string]int     // base-env relation name -> input slot
	freeFn  map[string]int     // base-env function name -> index
	depth   int
}

func compileModel(m *Model) (*Program, error) {
	c := &compiler{
		p:       &Program{model: m},
		bind:    make(map[string]binding),
		freeRel: make(map[string]int),
		freeFn:  make(map[string]int),
	}
	for _, s := range m.Stmts {
		switch st := s.(type) {
		case Let:
			if len(st.Params) > 0 {
				st := st // dedicated copy to take the address of
				c.bind[st.Name] = binding{fn: &st}
				continue
			}
			slot, err := c.expr(st.Body, nil)
			if err != nil {
				return nil, fmt.Errorf("cat: in let %s: %w", st.Name, err)
			}
			c.bind[st.Name] = binding{slot: slot}
		case Check:
			slot, err := c.expr(st.Expr, nil)
			if err != nil {
				return nil, fmt.Errorf("cat: in check %s: %w", st.Name, err)
			}
			c.p.checks = append(c.p.checks, progCheck{name: st.Name, kind: st.Kind, slot: slot})
		default:
			return nil, fmt.Errorf("cat: unknown statement %T", s)
		}
	}
	p := c.p
	p.splitSkeletonConstant()
	p.pool.New = func() any { return p.newScratch() }
	return p, nil
}

// skeletonConstRel reports whether a base-environment relation name resolves
// to a skeleton-derived relation on the exec fast path: identical across
// every rf/co completion of one path assembly. rf/rfe/co/fr vary per
// execution; unknown names conservatively vary.
func skeletonConstRel(name string) bool {
	switch name {
	case "po", "po-loc", "addr", "data", "ctrl", "rmw",
		"membar.cta", "membar.gl", "membar.sys",
		"cta", "gl", "sys":
		return true
	}
	return false
}

// splitSkeletonConstant partitions the free relations and instructions into
// skeleton-constant and per-execution halves for the exec fast path. An
// instruction is constant iff every operand slot is (the kind filters
// WW/WR/RW/RR depend otherwise only on the events, which are part of the
// skeleton). Instruction order is preserved within each half, and a
// constant instruction never reads a varying slot, so running all constant
// instructions first is dependency-safe.
func (p *Program) splitSkeletonConstant() {
	constSlot := make([]bool, p.nslots)
	for _, f := range p.freeRels {
		if skeletonConstRel(f.name) {
			constSlot[f.slot] = true
			p.constFreeRels = append(p.constFreeRels, f)
		} else {
			p.varFreeRels = append(p.varFreeRels, f)
		}
	}
	for _, in := range p.insns {
		isConst := false
		switch in.op {
		case opUnion, opInter, opDiff:
			isConst = constSlot[in.a] && constSlot[in.b]
		case opCall:
			isConst = true
			for _, a := range in.args {
				isConst = isConst && constSlot[a]
			}
		}
		if isConst {
			constSlot[in.dst] = true
			p.constInsns = append(p.constInsns, in)
		} else {
			p.varInsns = append(p.varInsns, in)
		}
	}
}

// newSlot allocates a fresh single-assignment slot.
func (c *compiler) newSlot() int {
	s := c.p.nslots
	c.p.nslots++
	return s
}

// expr compiles e and returns the slot holding its value. scope maps the
// parameter names of the function currently being inlined to their argument
// slots (nil outside any inlining).
func (c *compiler) expr(e Expr, scope map[string]int) (int, error) {
	switch v := e.(type) {
	case Ident:
		if slot, ok := scope[v.Name]; ok {
			return slot, nil
		}
		if b, ok := c.bind[v.Name]; ok {
			if b.fn != nil {
				return 0, fmt.Errorf("%q is a function, not a relation", v.Name)
			}
			return b.slot, nil
		}
		// Base-environment relation, loaded once per run.
		if slot, ok := c.freeRel[v.Name]; ok {
			return slot, nil
		}
		slot := c.newSlot()
		c.freeRel[v.Name] = slot
		c.p.freeRels = append(c.p.freeRels, freeRel{name: v.Name, slot: slot})
		return slot, nil
	case Union:
		return c.binop(opUnion, v.L, v.R, scope)
	case Inter:
		return c.binop(opInter, v.L, v.R, scope)
	case Diff:
		return c.binop(opDiff, v.L, v.R, scope)
	case App:
		return c.call(v, scope)
	default:
		return 0, fmt.Errorf("unknown expression %T", e)
	}
}

func (c *compiler) binop(op opcode, l, r Expr, scope map[string]int) (int, error) {
	a, err := c.expr(l, scope)
	if err != nil {
		return 0, err
	}
	b, err := c.expr(r, scope)
	if err != nil {
		return 0, err
	}
	dst := c.newSlot()
	c.p.insns = append(c.p.insns, insn{op: op, dst: dst, a: a, b: b})
	return dst, nil
}

func (c *compiler) call(v App, scope map[string]int) (int, error) {
	if _, ok := scope[v.Fn]; ok {
		return 0, fmt.Errorf("%q is not a function", v.Fn)
	}
	if b, ok := c.bind[v.Fn]; ok {
		if b.fn == nil {
			return 0, fmt.Errorf("%q is not a function", v.Fn)
		}
		return c.inline(b.fn, v, scope)
	}
	// Base-environment function (WW, ...): compile to a call resolved per
	// run; its arity is checked against the resolved FuncValue then.
	fi, ok := c.freeFn[v.Fn]
	if !ok {
		fi = len(c.p.freeFns)
		c.freeFn[v.Fn] = fi
		c.p.freeFns = append(c.p.freeFns, v.Fn)
	}
	args := make([]int, len(v.Args))
	for i, a := range v.Args {
		slot, err := c.expr(a, scope)
		if err != nil {
			return 0, err
		}
		args[i] = slot
	}
	dst := c.newSlot()
	c.p.insns = append(c.p.insns, insn{op: opCall, dst: dst, fn: fi, args: args})
	return dst, nil
}

// inline expands a model-local function call: arguments are compiled in the
// caller's scope, then the body is compiled with the parameters mapped to
// the argument slots. Name resolution inside the body uses the bindings in
// effect at the call site, exactly like the interpreter (model lets all
// share one environment, so a function body sees the bindings live at call
// time).
func (c *compiler) inline(fn *Let, v App, scope map[string]int) (int, error) {
	if len(v.Args) != len(fn.Params) {
		return 0, fmt.Errorf("%q wants %d arguments, got %d", v.Fn, len(fn.Params), len(v.Args))
	}
	if c.depth++; c.depth > maxInlineDepth {
		return 0, fmt.Errorf("%q exceeds inline depth %d (recursive function?)", v.Fn, maxInlineDepth)
	}
	defer func() { c.depth-- }()
	params := make(map[string]int, len(fn.Params))
	for i, a := range v.Args {
		slot, err := c.expr(a, scope)
		if err != nil {
			return 0, err
		}
		params[fn.Params[i]] = slot
	}
	return c.expr(fn.Body, params)
}

func (p *Program) newScratch() *Scratch {
	maxArity := 0
	for _, in := range p.insns {
		if in.op == opCall && len(in.args) > maxArity {
			maxArity = len(in.args)
		}
	}
	return &Scratch{
		slots:  make([]axiom.Rel, p.nslots),
		fns:    make([]FuncValue, len(p.freeFns)),
		args:   make([]axiom.Rel, maxArity),
		checks: make([]axiom.Rel, len(p.checks)),
	}
}

// NewScratch returns a fresh reusable scratch for RunScratch; callers that
// evaluate many executions on one worker hold one scratch and avoid the
// pool entirely.
func (p *Program) NewScratch() *Scratch { return p.newScratch() }

// Run evaluates the program against the base environment using a pooled
// scratch. It returns one result per check, like Model.Eval.
func (p *Program) Run(env *Env) (Results, error) {
	sc := p.pool.Get().(*Scratch)
	res, err := p.RunScratch(env, sc)
	p.pool.Put(sc)
	return res, err
}

// RunScratch evaluates the program with an explicit scratch. The scratch
// must not be used concurrently; the returned Results are independent of
// it.
func (p *Program) RunScratch(env *Env, sc *Scratch) (Results, error) {
	// The env path writes every slot, including the skeleton-constant ones
	// the exec path may be caching in this scratch: invalidate the cache.
	sc.skel = nil
	// Resolve the base-environment inputs once per run.
	for _, f := range p.freeRels {
		v, ok := env.Lookup(f.name)
		if !ok {
			return nil, fmt.Errorf("cat: unbound name %q", f.name)
		}
		rv, ok := v.(RelValue)
		if !ok {
			return nil, fmt.Errorf("cat: %q is a function, not a relation", f.name)
		}
		sc.slots[f.slot] = rv.Rel
	}
	for i, name := range p.freeFns {
		v, ok := env.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("cat: unbound function %q", name)
		}
		fv, ok := v.(FuncValue)
		if !ok {
			return nil, fmt.Errorf("cat: %q is not a function", name)
		}
		sc.fns[i] = fv
	}

	for _, in := range p.insns {
		switch in.op {
		case opUnion:
			sc.slots[in.dst].SetUnion(sc.slots[in.a], sc.slots[in.b])
		case opInter:
			sc.slots[in.dst].SetInter(sc.slots[in.a], sc.slots[in.b])
		case opDiff:
			sc.slots[in.dst].SetMinus(sc.slots[in.a], sc.slots[in.b])
		case opCall:
			if err := p.runCall(in, sc); err != nil {
				return nil, err
			}
		}
	}
	return p.results(sc), nil
}

// RunExec evaluates the program directly against a candidate execution:
// the fast path behind every model verdict. It binds exactly what ExecEnv
// binds — the Sec. 5.1.1 base relations and the WW/WR/RW/RR filters — but
// resolves them without constructing an environment (no per-execution map,
// interface boxing or closures); TestRunExecMatchesEnv pins the two paths
// against each other. sc may be nil to use the pool.
func (p *Program) RunExec(x *axiom.Execution, sc *Scratch) (Results, error) {
	if sc == nil {
		pooled := p.pool.Get().(*Scratch)
		res, err := p.RunExec(x, pooled)
		p.pool.Put(pooled)
		return res, err
	}
	if sc.tr.Enabled() {
		t0 := time.Now()
		res, err := p.runExecResults(x, sc)
		sc.tr.AddPhase(obs.PhaseEval, time.Since(t0))
		return res, err
	}
	return p.runExecResults(x, sc)
}

func (p *Program) runExecResults(x *axiom.Execution, sc *Scratch) (Results, error) {
	if err := p.runExecInsns(x, sc); err != nil {
		return nil, err
	}
	return p.results(sc), nil
}

// RunExecVerdict evaluates the program against a candidate execution like
// RunExec but reports only whether every check passed. It skips the
// per-check relation cloning RunExec pays for diagnostics — the last
// steady-state allocation on the verdict hot path — and short-circuits on
// the first violated check. Callers that read just OK/Allowed() (Judge,
// the campaign memo) use this. sc may be nil to use the pool.
func (p *Program) RunExecVerdict(x *axiom.Execution, sc *Scratch) (bool, error) {
	if sc == nil {
		pooled := p.pool.Get().(*Scratch)
		ok, err := p.RunExecVerdict(x, pooled)
		p.pool.Put(pooled)
		return ok, err
	}
	if sc.tr.Enabled() {
		t0 := time.Now()
		ok, err := p.runExecVerdict(x, sc)
		sc.tr.AddPhase(obs.PhaseEval, time.Since(t0))
		return ok, err
	}
	return p.runExecVerdict(x, sc)
}

func (p *Program) runExecVerdict(x *axiom.Execution, sc *Scratch) (bool, error) {
	if err := p.runExecInsns(x, sc); err != nil {
		return false, err
	}
	for _, c := range p.checks {
		r := sc.slots[c.slot]
		ok := false
		switch c.kind {
		case Acyclic:
			ok = r.Acyclic()
		case Irreflexive:
			ok = r.Irreflexive()
		case Empty:
			ok = r.IsEmpty()
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// runExecInsns resolves the base relations off the execution and fills the
// scratch's slots. The skeleton-constant half (constFreeRels/constInsns) is
// skipped when the scratch already holds it for this execution's skeleton —
// the common case when one worker checks consecutive rf/co completions of
// one path assembly.
func (p *Program) runExecInsns(x *axiom.Execution, sc *Scratch) error {
	key := x.SkeletonKey()
	if key == nil || key != sc.skel {
		sc.skel = nil // invalidated until the constant half loads cleanly
		for _, f := range p.constFreeRels {
			r, ok := execRel(x, f.name)
			if !ok {
				return execResolveErr(f.name)
			}
			sc.slots[f.slot] = r
		}
		for _, name := range p.freeFns {
			if _, _, ok := execKinds(name); !ok {
				if _, isRel := execRel(x, name); isRel {
					return fmt.Errorf("cat: %q is not a function", name)
				}
				return fmt.Errorf("cat: unbound function %q", name)
			}
		}
		if err := p.execInsns(x, sc, p.constInsns); err != nil {
			return err
		}
		sc.skel = key
	}
	for _, f := range p.varFreeRels {
		// co and fr are derived (not fields of the execution): rebuild them
		// into scratch-owned storage rather than allocating per execution.
		switch f.name {
		case "co":
			x.SetCoRel(&sc.co)
			sc.slots[f.slot] = sc.co
		case "fr":
			x.SetFR(&sc.fr)
			sc.slots[f.slot] = sc.fr
		default:
			r, ok := execRel(x, f.name)
			if !ok {
				return execResolveErr(f.name)
			}
			sc.slots[f.slot] = r
		}
	}
	return p.execInsns(x, sc, p.varInsns)
}

// execInsns interprets one half of the split instruction stream against x.
func (p *Program) execInsns(x *axiom.Execution, sc *Scratch, insns []insn) error {
	for _, in := range insns {
		switch in.op {
		case opUnion:
			sc.slots[in.dst].SetUnion(sc.slots[in.a], sc.slots[in.b])
		case opInter:
			sc.slots[in.dst].SetInter(sc.slots[in.a], sc.slots[in.b])
		case opDiff:
			sc.slots[in.dst].SetMinus(sc.slots[in.a], sc.slots[in.b])
		case opCall:
			name := p.freeFns[in.fn]
			first, second, _ := execKinds(name)
			if len(in.args) != 1 {
				return fmt.Errorf("cat: %q wants 1 arguments, got %d", name, len(in.args))
			}
			x.SetKindFilter(&sc.slots[in.dst], sc.slots[in.args[0]], first, second)
		}
	}
	return nil
}

// execResolveErr renders the unbound-relation error for the exec fast path.
func execResolveErr(name string) error {
	if _, _, isFn := execKinds(name); isFn {
		return fmt.Errorf("cat: %q is a function, not a relation", name)
	}
	return fmt.Errorf("cat: unbound name %q", name)
}

// results materialises the check outcomes from the scratch slots. The
// relations are cloned (in one batch): the slots' storage is reused by the
// next run, the results must stay valid indefinitely.
func (p *Program) results(sc *Scratch) Results {
	for i, c := range p.checks {
		sc.checks[i] = sc.slots[c.slot]
	}
	clones := axiom.CloneBatch(sc.checks)
	results := make(Results, len(p.checks))
	for i, c := range p.checks {
		r := sc.slots[c.slot]
		ok := false
		switch c.kind {
		case Acyclic:
			ok = r.Acyclic()
		case Irreflexive:
			ok = r.Irreflexive()
		case Empty:
			ok = r.IsEmpty()
		}
		results[i] = CheckResult{Name: c.name, Kind: c.kind, OK: ok, Rel: clones[i]}
	}
	return results
}

// execRel resolves a base-relation name against an execution, mirroring
// ExecEnv's relation bindings.
func execRel(x *axiom.Execution, name string) (axiom.Rel, bool) {
	switch name {
	case "po":
		return x.PO, true
	case "po-loc":
		return x.PoLoc(), true
	case "rf":
		return x.RF, true
	case "rfe":
		return x.RFE(), true
	case "co":
		return x.CoRel(), true
	case "fr":
		return x.FR(), true
	case "addr":
		return x.Addr, true
	case "data":
		return x.Data, true
	case "ctrl":
		return x.Ctrl, true
	case "rmw":
		return x.RMW, true
	case "membar.cta":
		return x.Membar[ptx.ScopeCTA], true
	case "membar.gl":
		return x.Membar[ptx.ScopeGL], true
	case "membar.sys":
		return x.Membar[ptx.ScopeSys], true
	case "cta":
		return x.ScopeRel(ptx.ScopeCTA), true
	case "gl":
		return x.ScopeRel(ptx.ScopeGL), true
	case "sys":
		return x.ScopeRel(ptx.ScopeSys), true
	}
	return axiom.Rel{}, false
}

// execKinds resolves a builtin filter name, mirroring ExecEnv's function
// bindings.
func execKinds(name string) (first, second axiom.Kind, ok bool) {
	switch name {
	case "WW":
		return axiom.KWrite, axiom.KWrite, true
	case "WR":
		return axiom.KWrite, axiom.KRead, true
	case "RW":
		return axiom.KRead, axiom.KWrite, true
	case "RR":
		return axiom.KRead, axiom.KRead, true
	}
	return 0, 0, false
}

func (p *Program) runCall(in insn, sc *Scratch) error {
	fv := sc.fns[in.fn]
	args := sc.args[:len(in.args)]
	for i, s := range in.args {
		args[i] = sc.slots[s]
	}
	if fv.Fn != nil { // builtin
		if fv.Arity >= 0 && len(args) != fv.Arity {
			return fmt.Errorf("cat: %q wants %d arguments, got %d", p.freeFns[in.fn], fv.Arity, len(args))
		}
		sc.slots[in.dst] = fv.Fn(args)
		return nil
	}
	// A user-defined function supplied by the base environment: fall back
	// to the interpreter for its body.
	if len(args) != len(fv.Params) {
		return fmt.Errorf("cat: %q wants %d arguments, got %d", p.freeFns[in.fn], len(fv.Params), len(args))
	}
	scope := fv.Env.child()
	for i, param := range fv.Params {
		scope.BindRel(param, args[i])
	}
	r, err := evalExpr(fv.Body, scope)
	if err != nil {
		return err
	}
	sc.slots[in.dst] = r
	return nil
}
