package cat

import (
	"fmt"

	"github.com/weakgpu/gpulitmus/internal/axiom"
	"github.com/weakgpu/gpulitmus/internal/ptx"
)

// Eval runs the model against the base environment and returns one result
// per check. The model is lowered once (per Model value) to a flat slot
// program by Compile; every Eval after the first reuses the compiled form
// and a pooled scratch, so per-execution evaluation is a tight loop over
// opcodes rather than an AST walk plus name lookups.
func (m *Model) Eval(base *Env) (Results, error) {
	p, err := m.Compile()
	if err != nil {
		return nil, err
	}
	return p.Run(base)
}

// interp is the original tree-walking evaluator, retained as the reference
// implementation: the differential tests in compile_test.go pin the
// compiled path against it statement for statement.
func (m *Model) interp(base *Env) (Results, error) {
	env := base.child()
	var results Results
	for _, s := range m.Stmts {
		switch st := s.(type) {
		case Let:
			if len(st.Params) > 0 {
				env.Bind(st.Name, FuncValue{Name: st.Name, Params: st.Params, Body: st.Body, Env: env})
			} else {
				r, err := evalExpr(st.Body, env)
				if err != nil {
					return nil, fmt.Errorf("cat: in let %s: %w", st.Name, err)
				}
				env.BindRel(st.Name, r)
			}
		case Check:
			r, err := evalExpr(st.Expr, env)
			if err != nil {
				return nil, fmt.Errorf("cat: in check %s: %w", st.Name, err)
			}
			ok := false
			switch st.Kind {
			case Acyclic:
				ok = r.Acyclic()
			case Irreflexive:
				ok = r.Irreflexive()
			case Empty:
				ok = r.IsEmpty()
			}
			results = append(results, CheckResult{Name: st.Name, Kind: st.Kind, OK: ok, Rel: r})
		default:
			return nil, fmt.Errorf("cat: unknown statement %T", s)
		}
	}
	return results, nil
}

func evalExpr(e Expr, env *Env) (axiom.Rel, error) {
	switch v := e.(type) {
	case Ident:
		val, ok := env.Lookup(v.Name)
		if !ok {
			return axiom.Rel{}, fmt.Errorf("unbound name %q", v.Name)
		}
		r, ok := val.(RelValue)
		if !ok {
			return axiom.Rel{}, fmt.Errorf("%q is a function, not a relation", v.Name)
		}
		return r.Rel, nil
	case Union:
		l, err := evalExpr(v.L, env)
		if err != nil {
			return axiom.Rel{}, err
		}
		r, err := evalExpr(v.R, env)
		if err != nil {
			return axiom.Rel{}, err
		}
		return l.Union(r), nil
	case Inter:
		l, err := evalExpr(v.L, env)
		if err != nil {
			return axiom.Rel{}, err
		}
		r, err := evalExpr(v.R, env)
		if err != nil {
			return axiom.Rel{}, err
		}
		return l.Inter(r), nil
	case Diff:
		l, err := evalExpr(v.L, env)
		if err != nil {
			return axiom.Rel{}, err
		}
		r, err := evalExpr(v.R, env)
		if err != nil {
			return axiom.Rel{}, err
		}
		return l.Minus(r), nil
	case App:
		val, ok := env.Lookup(v.Fn)
		if !ok {
			return axiom.Rel{}, fmt.Errorf("unbound function %q", v.Fn)
		}
		fn, ok := val.(FuncValue)
		if !ok {
			return axiom.Rel{}, fmt.Errorf("%q is not a function", v.Fn)
		}
		args := make([]axiom.Rel, len(v.Args))
		for i, a := range v.Args {
			r, err := evalExpr(a, env)
			if err != nil {
				return axiom.Rel{}, err
			}
			args[i] = r
		}
		if fn.Fn != nil { // builtin
			if fn.Arity >= 0 && len(args) != fn.Arity {
				return axiom.Rel{}, fmt.Errorf("%q wants %d arguments, got %d", v.Fn, fn.Arity, len(args))
			}
			return fn.Fn(args), nil
		}
		if len(args) != len(fn.Params) {
			return axiom.Rel{}, fmt.Errorf("%q wants %d arguments, got %d", v.Fn, len(fn.Params), len(args))
		}
		scope := fn.Env.child()
		for i, p := range fn.Params {
			scope.BindRel(p, args[i])
		}
		return evalExpr(fn.Body, scope)
	default:
		return axiom.Rel{}, fmt.Errorf("unknown expression %T", e)
	}
}

// ExecEnv builds the base environment for evaluating a model against a
// candidate execution: the primitive relations of Sec. 5.1.1 plus the
// WW/WR/RW/RR filters.
func ExecEnv(x *axiom.Execution) *Env {
	env := NewEnv()
	env.BindRel("po", x.PO)
	env.BindRel("po-loc", x.PoLoc())
	env.BindRel("rf", x.RF)
	env.BindRel("rfe", x.RFE())
	env.BindRel("co", x.CoRel())
	env.BindRel("fr", x.FR())
	env.BindRel("addr", x.Addr)
	env.BindRel("data", x.Data)
	env.BindRel("ctrl", x.Ctrl)
	env.BindRel("rmw", x.RMW)
	env.BindRel("membar.cta", x.Membar[ptx.ScopeCTA])
	env.BindRel("membar.gl", x.Membar[ptx.ScopeGL])
	env.BindRel("membar.sys", x.Membar[ptx.ScopeSys])
	env.BindRel("cta", x.ScopeRel(ptx.ScopeCTA))
	env.BindRel("gl", x.ScopeRel(ptx.ScopeGL))
	env.BindRel("sys", x.ScopeRel(ptx.ScopeSys))

	// The filters take exactly one relation; BindFunc's arity makes any
	// other call shape an evaluation error rather than a silently empty
	// relation.
	filter := func(first, second axiom.Kind) func([]axiom.Rel) axiom.Rel {
		return func(args []axiom.Rel) axiom.Rel {
			return x.KindFilter(args[0], first, second)
		}
	}
	env.BindFunc("WW", 1, filter(axiom.KWrite, axiom.KWrite))
	env.BindFunc("WR", 1, filter(axiom.KWrite, axiom.KRead))
	env.BindFunc("RW", 1, filter(axiom.KRead, axiom.KWrite))
	env.BindFunc("RR", 1, filter(axiom.KRead, axiom.KRead))
	return env
}
