package cat

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/weakgpu/gpulitmus/internal/axiom"
)

// diffEval runs the model through both the compiled program (Eval) and the
// retained tree-walking interpreter and asserts identical results — or that
// both error.
func diffEval(t *testing.T, src string, env *Env) {
	t.Helper()
	m, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	compiled, cErr := m.Eval(env)
	interp, iErr := m.interp(env)
	if (cErr != nil) != (iErr != nil) {
		t.Fatalf("compiled err %v vs interpreter err %v\n%s", cErr, iErr, src)
	}
	if cErr != nil {
		return
	}
	if len(compiled) != len(interp) {
		t.Fatalf("result counts differ: %d vs %d\n%s", len(compiled), len(interp), src)
	}
	for i := range compiled {
		c, r := compiled[i], interp[i]
		if c.Name != r.Name || c.Kind != r.Kind || c.OK != r.OK {
			t.Fatalf("check %d: compiled %+v vs interpreter %+v\n%s", i, c, r, src)
		}
		if !c.Rel.Equal(r.Rel) {
			t.Fatalf("check %s: relation %v vs %v\n%s", c.Name, c.Rel, r.Rel, src)
		}
	}
}

// TestCompiledMatchesInterpreter pins the compiled evaluator against the
// interpreter on hand-picked models covering lets, parameterised lets,
// shadowing, builtins, and precedence.
func TestCompiledMatchesInterpreter(t *testing.T) {
	env := NewEnv()
	env.BindRel("x", axiom.FromPairs([2]axiom.EventID{0, 1}, [2]axiom.EventID{1, 2}))
	env.BindRel("y", axiom.FromPairs([2]axiom.EventID{2, 0}))
	env.BindRel("z", axiom.FromPairs([2]axiom.EventID{1, 1}))
	env.BindFunc("ID", 1, func(args []axiom.Rel) axiom.Rel { return args[0] })

	for _, src := range []string{
		"acyclic x as a",
		"acyclic x | y as cyc\nirreflexive z as ir\nempty x & y as e",
		"let a = x | y\nlet b = a & x\nacyclic b \\ y as c",
		"let f(p) = p | y\nacyclic f(x) as c1\nacyclic f(f(x)) as c2",
		"let f(p, q) = p & q\nlet g(p) = f(p, x)\nempty g(y) as c",
		"let a = x\nlet a = a | y\nacyclic a as rebound",
		"let a = x | y & z\nirreflexive a as prec",
		"acyclic ID(x | y) as builtin",
		"let f(p) = ID(p) \\ y\nempty f(y) \\ x \\ x as chain",
		// Error cases: both paths must reject.
		"acyclic nosuch as c",
		"acyclic ID(x, y) as c",                  // builtin arity mismatch
		"let f(p, q) = p | q\nacyclic f(x) as c", // user arity mismatch
		"acyclic x(y) as c",                      // relation used as function
		"acyclic ID as c",                        // function used as relation
		"let f(p) = p\nacyclic f as c",
	} {
		diffEval(t, src, env)
	}
}

// TestCompiledMatchesInterpreterRandom feeds both evaluators randomly
// generated models over random environments.
func TestCompiledMatchesInterpreterRandom(t *testing.T) {
	names := []string{"r0", "r1", "r2", "r3"}
	rng := rand.New(rand.NewSource(20150314))
	for trial := 0; trial < 200; trial++ {
		env := NewEnv()
		for _, n := range names {
			r := axiom.NewRel()
			for i := rng.Intn(8); i > 0; i-- {
				r.Add(axiom.EventID(rng.Intn(6)), axiom.EventID(rng.Intn(6)))
			}
			env.BindRel(n, r)
		}
		env.BindFunc("ID", 1, func(args []axiom.Rel) axiom.Rel { return args[0] })

		var sb strings.Builder
		bound := append([]string{}, names...)
		lets := rng.Intn(4)
		for i := 0; i < lets; i++ {
			name := fmt.Sprintf("l%d", i)
			fmt.Fprintf(&sb, "let %s = %s\n", name, randExpr(rng, bound, 3))
			bound = append(bound, name)
		}
		fn := fmt.Sprintf("f%d", trial%3)
		fmt.Fprintf(&sb, "let %s(p) = %s | p\n", fn, randExpr(rng, bound, 2))
		checks := 1 + rng.Intn(3)
		kinds := []string{"acyclic", "irreflexive", "empty"}
		for i := 0; i < checks; i++ {
			expr := randExpr(rng, bound, 3)
			if rng.Intn(2) == 0 {
				expr = fmt.Sprintf("%s(%s)", fn, expr)
			}
			fmt.Fprintf(&sb, "%s %s as c%d\n", kinds[rng.Intn(len(kinds))], expr, i)
		}
		diffEval(t, sb.String(), env)
	}
}

func randExpr(rng *rand.Rand, bound []string, depth int) string {
	if depth == 0 || rng.Intn(3) == 0 {
		return bound[rng.Intn(len(bound))]
	}
	l, r := randExpr(rng, bound, depth-1), randExpr(rng, bound, depth-1)
	switch rng.Intn(4) {
	case 0:
		return fmt.Sprintf("(%s | %s)", l, r)
	case 1:
		return fmt.Sprintf("(%s & %s)", l, r)
	case 2:
		return fmt.Sprintf("(%s \\ %s)", l, r)
	default:
		return fmt.Sprintf("ID(%s)", l)
	}
}

// TestBuiltinArityError pins the satellite bugfix: a WW/WR/RW/RR call with
// the wrong number of arguments must surface as an evaluation error (the
// old ExecEnv builtins silently returned the empty relation, making "empty
// WW(a, b)" vacuously pass).
func TestBuiltinArityError(t *testing.T) {
	env := NewEnv()
	env.BindRel("a", axiom.FromPairs([2]axiom.EventID{0, 1}))
	env.BindRel("b", axiom.FromPairs([2]axiom.EventID{1, 0}))
	env.BindFunc("WW", 1, func(args []axiom.Rel) axiom.Rel { return args[0] })

	m := MustParse("empty WW(a, b) as oops")
	if _, err := m.Eval(env); err == nil || !strings.Contains(err.Error(), "wants 1 arguments") {
		t.Errorf("compiled eval: expected arity error, got %v", err)
	}
	if _, err := m.interp(env); err == nil || !strings.Contains(err.Error(), "wants 1 arguments") {
		t.Errorf("interpreter: expected arity error, got %v", err)
	}

	// The correct arity still evaluates.
	ok := MustParse("empty WW(a) \\ a as fine")
	res, err := ok.Eval(env)
	if err != nil || !res[0].OK {
		t.Errorf("unary call broken: %v %v", res, err)
	}
}

// TestScratchReuseAcrossEnvs runs one compiled program against differently
// sized environments through a single scratch, guarding against stale slot
// storage leaking between runs.
func TestScratchReuseAcrossEnvs(t *testing.T) {
	m := MustParse("let u = a | b\nacyclic u as c\nempty u & a as e")
	p, err := m.Compile()
	if err != nil {
		t.Fatal(err)
	}
	sc := p.NewScratch()
	mkEnv := func(maxID int, cyclic bool) *Env {
		env := NewEnv()
		a, b := axiom.NewRel(), axiom.NewRel()
		a.Add(0, axiom.EventID(maxID))
		if cyclic {
			b.Add(axiom.EventID(maxID), 0)
		}
		env.BindRel("a", a)
		env.BindRel("b", b)
		return env
	}
	for i, c := range []struct {
		maxID  int
		cyclic bool
	}{{50, true}, {3, false}, {100, true}, {2, true}, {70, false}} {
		res, err := p.RunScratch(mkEnv(c.maxID, c.cyclic), sc)
		if err != nil {
			t.Fatal(err)
		}
		if res[0].OK != !c.cyclic {
			t.Errorf("run %d: acyclic = %v, want %v", i, res[0].OK, !c.cyclic)
		}
		if res[1].OK {
			t.Errorf("run %d: u & a must be non-empty", i)
		}
	}
}
