package cat

import (
	"fmt"
	"strings"
	"sync"
)

// Expr is a .cat relation expression.
type Expr interface{ exprString() string }

// Ident references a bound relation or function.
type Ident struct{ Name string }

func (e Ident) exprString() string { return e.Name }

// Union is "l | r".
type Union struct{ L, R Expr }

func (e Union) exprString() string { return e.L.exprString() + " | " + e.R.exprString() }

// Inter is "l & r".
type Inter struct{ L, R Expr }

func (e Inter) exprString() string { return e.L.exprString() + " & " + e.R.exprString() }

// Diff is "l \ r".
type Diff struct{ L, R Expr }

func (e Diff) exprString() string { return e.L.exprString() + " \\ " + e.R.exprString() }

// App applies a function: "WW(po-loc)" or "rmo(cta-fence)".
type App struct {
	Fn   string
	Args []Expr
}

func (e App) exprString() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.exprString()
	}
	return e.Fn + "(" + strings.Join(args, ", ") + ")"
}

// Stmt is a top-level statement: a let binding or a check.
type Stmt interface{ stmtString() string }

// Let binds a name (possibly parameterised) to an expression.
type Let struct {
	Name   string
	Params []string
	Body   Expr
}

func (s Let) stmtString() string {
	if len(s.Params) > 0 {
		return fmt.Sprintf("let %s(%s) = %s", s.Name, strings.Join(s.Params, ", "), s.Body.exprString())
	}
	return fmt.Sprintf("let %s = %s", s.Name, s.Body.exprString())
}

// Check is "acyclic e as name" (or irreflexive/empty).
type Check struct {
	Kind CheckKind
	Expr Expr
	Name string
}

func (s Check) stmtString() string {
	return fmt.Sprintf("%s %s as %s", s.Kind, s.Expr.exprString(), s.Name)
}

// Model is a parsed .cat model. Compile lowers it (once) to a flat slot
// program; Eval runs the compiled form.
type Model struct {
	Name  string
	Stmts []Stmt

	compileOnce sync.Once
	prog        *Program
	compileErr  error
}

// String reproduces the model source in canonical form.
func (m *Model) String() string {
	var sb strings.Builder
	if m.Name != "" {
		sb.WriteString(m.Name + "\n")
	}
	for _, s := range m.Stmts {
		sb.WriteString(s.stmtString() + "\n")
	}
	return sb.String()
}

// token kinds for the lexer.
type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tLParen
	tRParen
	tPipe
	tAmp
	tBackslash
	tEquals
	tComma
)

type token struct {
	kind tokKind
	text string
	line int
}

// lex tokenises .cat source. Identifiers may contain letters, digits, '_',
// '-' and '.', covering names like "po-loc-llh" and "membar.sys". Comments
// are "(* ... *)" and "//" to end of line.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '(' && i+1 < len(src) && src[i+1] == '*':
			end := strings.Index(src[i+2:], "*)")
			if end < 0 {
				return nil, fmt.Errorf("cat: line %d: unterminated comment", line)
			}
			line += strings.Count(src[i:i+2+end+2], "\n")
			i += 2 + end + 2
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '(':
			toks = append(toks, token{tLParen, "(", line})
			i++
		case c == ')':
			toks = append(toks, token{tRParen, ")", line})
			i++
		case c == '|':
			toks = append(toks, token{tPipe, "|", line})
			i++
		case c == '&':
			toks = append(toks, token{tAmp, "&", line})
			i++
		case c == '\\':
			toks = append(toks, token{tBackslash, "\\", line})
			i++
		case c == '=':
			toks = append(toks, token{tEquals, "=", line})
			i++
		case c == ',':
			toks = append(toks, token{tComma, ",", line})
			i++
		case isIdentByte(c):
			j := i
			for j < len(src) && isIdentByte(src[j]) {
				j++
			}
			toks = append(toks, token{tIdent, src[i:j], line})
			i = j
		default:
			return nil, fmt.Errorf("cat: line %d: unexpected character %q", line, c)
		}
	}
	toks = append(toks, token{tEOF, "", line})
	return toks, nil
}

func isIdentByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
		c == '_' || c == '-' || c == '.'
}

// Parse parses .cat source into a model. The optional leading identifier
// line (a bare name before the first let/check) becomes the model name.
func Parse(src string) (*Model, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	m := &Model{}
	// Optional model name: an identifier not followed by '=' or '(' and
	// not a keyword.
	if p.peek().kind == tIdent && !isKeyword(p.peek().text) {
		m.Name = p.next().text
	}
	for p.peek().kind != tEOF {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		m.Stmts = append(m.Stmts, s)
	}
	return m, nil
}

// MustParse parses src and panics on error; for embedded model sources.
func MustParse(src string) *Model {
	m, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return m
}

func isKeyword(s string) bool {
	switch s {
	case "let", "acyclic", "irreflexive", "empty", "as":
		return true
	}
	return false
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token {
	if p.pos >= len(p.toks) {
		return p.toks[len(p.toks)-1] // the tEOF sentinel
	}
	return p.toks[p.pos]
}

func (p *parser) next() token {
	t := p.peek()
	if p.pos < len(p.toks) {
		p.pos++
	}
	return t
}
func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("cat: line %d: %s", p.peek().line, fmt.Sprintf(format, args...))
}

func (p *parser) expectIdent(text string) error {
	t := p.next()
	if t.kind != tIdent || t.text != text {
		return fmt.Errorf("cat: line %d: expected %q, got %q", t.line, text, t.text)
	}
	return nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.peek()
	if t.kind != tIdent {
		return nil, p.errf("expected statement, got %q", t.text)
	}
	switch t.text {
	case "let":
		return p.parseLet()
	case "acyclic":
		p.next()
		return p.parseCheck(Acyclic)
	case "irreflexive":
		p.next()
		return p.parseCheck(Irreflexive)
	case "empty":
		p.next()
		return p.parseCheck(Empty)
	default:
		return nil, p.errf("unexpected token %q", t.text)
	}
}

func (p *parser) parseLet() (Stmt, error) {
	if err := p.expectIdent("let"); err != nil {
		return nil, err
	}
	name := p.next()
	if name.kind != tIdent {
		return nil, p.errf("expected name after let")
	}
	var params []string
	if p.peek().kind == tLParen {
		p.next()
		for {
			t := p.next()
			if t.kind != tIdent {
				return nil, p.errf("expected parameter name")
			}
			params = append(params, t.text)
			if p.peek().kind == tComma {
				p.next()
				continue
			}
			break
		}
		if t := p.next(); t.kind != tRParen {
			return nil, p.errf("expected ) after parameters")
		}
	}
	if t := p.next(); t.kind != tEquals {
		return nil, p.errf("expected = in let")
	}
	body, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return Let{Name: name.text, Params: params, Body: body}, nil
}

func (p *parser) parseCheck(kind CheckKind) (Stmt, error) {
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectIdent("as"); err != nil {
		return nil, err
	}
	name := p.next()
	if name.kind != tIdent {
		return nil, p.errf("expected check name after as")
	}
	return Check{Kind: kind, Expr: e, Name: name.text}, nil
}

// Expression grammar, loosest to tightest: union < difference < inter <
// primary. ("\" and "&" at distinct levels keeps "a & b \ c" unambiguous.)
func (p *parser) parseExpr() (Expr, error) { return p.parseUnion() }

func (p *parser) parseUnion() (Expr, error) {
	l, err := p.parseDiff()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tPipe {
		p.next()
		r, err := p.parseDiff()
		if err != nil {
			return nil, err
		}
		l = Union{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseDiff() (Expr, error) {
	l, err := p.parseInter()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tBackslash {
		p.next()
		r, err := p.parseInter()
		if err != nil {
			return nil, err
		}
		l = Diff{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseInter() (Expr, error) {
	l, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tAmp {
		p.next()
		r, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		l = Inter{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.next()
	switch t.kind {
	case tLParen:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if c := p.next(); c.kind != tRParen {
			return nil, p.errf("expected )")
		}
		return e, nil
	case tIdent:
		if isKeyword(t.text) {
			return nil, fmt.Errorf("cat: line %d: unexpected keyword %q in expression", t.line, t.text)
		}
		if p.peek().kind == tLParen {
			p.next()
			var args []Expr
			for {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if p.peek().kind == tComma {
					p.next()
					continue
				}
				break
			}
			if c := p.next(); c.kind != tRParen {
				return nil, p.errf("expected ) after arguments")
			}
			return App{Fn: t.text, Args: args}, nil
		}
		return Ident{Name: t.text}, nil
	default:
		return nil, fmt.Errorf("cat: line %d: unexpected token %q in expression", t.line, t.text)
	}
}
