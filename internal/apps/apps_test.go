package apps

import (
	"strings"
	"testing"

	"github.com/weakgpu/gpulitmus/internal/chip"
)

const appRuns = 1500

func TestDotProductBrokenOnTitan(t *testing.T) {
	rep, err := DotProduct(false, 2).Run(chip.GTXTitan, chip.Default(), appRuns, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations == 0 {
		t.Error("the unfenced dot product must lose updates on Titan")
	}
}

func TestDotProductFixedEverywhere(t *testing.T) {
	for _, p := range chip.All() {
		rep, err := DotProduct(true, 2).Run(p, chip.Default(), appRuns, 2)
		if err != nil {
			t.Fatalf("%s: %v", p.ShortName, err)
		}
		if rep.Violations != 0 {
			t.Errorf("%s: fenced dot product wrong in %d runs", p.ShortName, rep.Violations)
		}
	}
}

func TestDotProductCorrectOnGTX280(t *testing.T) {
	rep, err := DotProduct(false, 2).Run(chip.GTX280, chip.Default(), appRuns, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations != 0 {
		t.Errorf("GTX 280 must not lose updates even unfenced, got %d", rep.Violations)
	}
}

func TestDotProductThreeContributors(t *testing.T) {
	rep, err := DotProduct(true, 3).Run(chip.TeslaC2075, chip.Default(), 800, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations != 0 {
		t.Errorf("3-way fenced dot product wrong in %d runs", rep.Violations)
	}
	rep, err = DotProduct(false, 3).Run(chip.TeslaC2075, chip.Default(), 800, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations == 0 {
		t.Error("3-way unfenced dot product must lose updates on TesC")
	}
}

func TestDequeLosesTasks(t *testing.T) {
	// The dlb-mp rate is tiny in the paper too (4-65 per 100k, Fig. 7);
	// this deterministic seed/run combination exhibits it.
	rep, err := WorkStealingDeque(false).Run(chip.TeslaC2075, chip.Default(), 30000, 99)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations == 0 {
		t.Error("the unfenced deque must lose a task on TesC")
	}
	rep, err = WorkStealingDeque(true).Run(chip.TeslaC2075, chip.Default(), appRuns, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations != 0 {
		t.Errorf("the fenced deque lost %d tasks", rep.Violations)
	}
}

func TestTransactionIsolation(t *testing.T) {
	rep, err := TransactionIsolation(false).Run(chip.GTXTitan, chip.Default(), 4000, 8)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations == 0 {
		t.Error("the broken He-Yu lock must violate isolation on Titan")
	}
	rep, err = TransactionIsolation(true).Run(chip.GTXTitan, chip.Default(), appRuns, 9)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations != 0 {
		t.Errorf("the repaired He-Yu lock violated isolation %d times", rep.Violations)
	}
}

func TestSummary(t *testing.T) {
	s, err := Summary(chip.GTX750, chip.Default(), 200, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "dot-product") || !strings.Contains(s, "transactions") {
		t.Errorf("summary:\n%s", s)
	}
}

func TestAllAppsValidate(t *testing.T) {
	for _, a := range All() {
		if err := a.Test.Validate(); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
	}
}

func TestReportString(t *testing.T) {
	rep := &Report{App: "x", Chip: "Titan", Runs: 10, Violations: 0}
	if !strings.Contains(rep.String(), "correct") {
		t.Errorf("report: %s", rep)
	}
	rep.Violations = 3
	if !strings.Contains(rep.String(), "INCORRECT in 3/10") {
		t.Errorf("report: %s", rep)
	}
}
