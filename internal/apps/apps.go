// Package apps runs the application studies of Sec. 3.2 end to end on the
// simulator: the CUDA by Example dot-product lock (Fig. 2), the
// Cederman–Tsigas work-stealing deque (Fig. 6), and the He–Yu transaction
// lock (Fig. 10) — each in its original (broken) and repaired form. Where
// the litmus tests of Figs. 7-11 distil single interactions, these apps
// exercise the full code paths (spin loops included) and count incorrect
// results.
package apps

import (
	"fmt"
	"strings"

	"github.com/weakgpu/gpulitmus/internal/chip"
	"github.com/weakgpu/gpulitmus/internal/litmus"
	"github.com/weakgpu/gpulitmus/internal/sim"
)

// App is an application study: a program whose Exists condition witnesses
// an incorrect result.
type App struct {
	Name string
	Doc  string
	Test *litmus.Test
}

// Report counts incorrect outcomes over many runs.
type Report struct {
	App        string
	Chip       string
	Runs       int
	Violations int
}

// String summarises the report.
func (r *Report) String() string {
	verdict := "correct in all runs"
	if r.Violations > 0 {
		verdict = fmt.Sprintf("INCORRECT in %d/%d runs", r.Violations, r.Runs)
	}
	return fmt.Sprintf("%s on %s: %s", r.App, r.Chip, verdict)
}

// Run executes the app and counts violations.
func (a *App) Run(p *chip.Profile, inc chip.Incant, runs int, seed int64) (*Report, error) {
	rep := &Report{App: a.Name, Chip: p.ShortName, Runs: runs}
	for i := 0; i < runs; i++ {
		res, err := sim.Run(a.Test, p, inc, seed+int64(i))
		if err != nil {
			return nil, err
		}
		if a.Test.Exists.Eval(res.State) {
			rep.Violations++
		}
	}
	return rep, nil
}

// DotProduct is the finale of CUDA by Example's dot product (Fig. 2 plus
// App. 1.2): each contributor adds 1 to a global sum under the spin lock.
// Without the erratum's fences the critical section can read a stale sum
// and lose an update; the violation condition is "final sum is not the
// contributor count".
func DotProduct(fenced bool, contributors int) *App {
	name := "dot-product"
	if fenced {
		name += "+fences"
	}
	b := litmus.NewTest(name).
		Global("sum", 0).Global("m", 0)
	for i := 0; i < contributors; i++ {
		b = b.Thread(lockUnlockBody(fenced)...)
	}
	test := b.InterCTA().
		Exists(fmt.Sprintf("~sum=%d", contributors)).
		MustBuild()
	return &App{
		Name: name,
		Doc:  "CUDA by Example dot product: global sum under the Fig. 2 spin lock",
		Test: test,
	}
}

// lockUnlockBody is one contributor: spin-acquire, read-modify-write the
// sum, release — the Fig. 2 lock with or without the erratum's fences.
func lockUnlockBody(fenced bool) []string {
	var body []string
	body = append(body,
		"SPIN:",
		"atom.cas r0,[m],0,1",
		"setp.eq p1,r0,0",
		"@!p1 bra SPIN",
	)
	if fenced {
		body = append(body, "membar.gl")
	}
	body = append(body,
		"ld.cg r1,[sum]",
		"add r2,r1,1",
		"st.cg [sum],r2",
	)
	if fenced {
		body = append(body, "membar.gl")
	}
	body = append(body, "atom.exch r9,[m],0")
	return body
}

// WorkStealingDeque is the Fig. 6 push/steal interaction run whole: the
// owner pushes task 7 and publishes it by incrementing tail; the thief
// polls tail and, on seeing the task, reads it and claims it with a CAS on
// head. The violation is a successful claim of a stale (zero) task — the
// deque losing a task (Sec. 3.2.1).
func WorkStealingDeque(fenced bool) *App {
	name := "work-stealing-deque"
	if fenced {
		name += "+fences"
	}
	ownerFence, thiefFence := "", ""
	if fenced {
		ownerFence = "membar.gl"
		thiefFence = "@!p4 membar.gl"
	}
	test := litmus.NewTest(name).
		Global("task0", 0).Global("tail", 0).Global("head", 0).
		Thread(
			"st.cg [task0],7",
			ownerFence,
			"ld.volatile r2,[tail]",
			"add r2,r2,1",
			"st.volatile [tail],r2",
		).
		Thread(
			"ld.volatile r0,[tail]",
			"setp.eq p4,r0,0",
			thiefFence,
			"@!p4 ld.cg r1,[task0]",
			"@!p4 atom.cas r3,[head],0,1",
		).
		InterCTA().
		Exists("1:r0=1 /\\ 1:r1=0 /\\ 1:r3=0").
		MustBuild()
	return &App{
		Name: name,
		Doc:  "Cederman-Tsigas work-stealing deque: steal claims a task whose payload it read stale",
		Test: test,
	}
}

// TransactionIsolation is the He–Yu database lock (Fig. 10) run whole: T0
// holds the lock, reads the database cell inside its critical section, and
// releases; T1 spin-acquires, writes the cell in its own critical section,
// and releases. Isolation is violated when T0's read returns T1's future
// write (Sec. 3.2.3).
func TransactionIsolation(fixed bool) *App {
	name := "transactions"
	if fixed {
		name += "+fixed"
	}
	var t0 []string
	t0 = append(t0, "ld.cg r0,[x]")
	if fixed {
		t0 = append(t0, "membar.gl", "atom.exch r1,[lock],0")
	} else {
		t0 = append(t0, "st.cg [lock],0", "membar.gl")
	}
	var t1 []string
	t1 = append(t1,
		"SPIN:",
		"atom.cas r2,[lock],0,1",
		"setp.eq p1,r2,0",
		"@!p1 bra SPIN",
	)
	if fixed {
		t1 = append(t1, "membar.gl")
	}
	t1 = append(t1, "st.cg [x],1")
	if fixed {
		t1 = append(t1, "membar.gl", "atom.exch r9,[lock],0")
	} else {
		t1 = append(t1, "st.cg [lock],0")
	}
	test := litmus.NewTest(name).
		Global("x", 0).Global("lock", 1).
		Thread(t0...).
		Thread(t1...).
		InterCTA().
		Exists("0:r0=1").
		MustBuild()
	return &App{
		Name: name,
		Doc:  "He-Yu transactions: a critical section reads a value written by the next critical section",
		Test: test,
	}
}

// All returns every application study, broken and repaired.
func All() []*App {
	return []*App{
		DotProduct(false, 2), DotProduct(true, 2),
		WorkStealingDeque(false), WorkStealingDeque(true),
		TransactionIsolation(false), TransactionIsolation(true),
	}
}

// Summary runs every app on the chip and formats one line per app.
func Summary(p *chip.Profile, inc chip.Incant, runs int, seed int64) (string, error) {
	var sb strings.Builder
	for _, a := range All() {
		rep, err := a.Run(p, inc, runs, seed)
		if err != nil {
			return "", err
		}
		sb.WriteString(rep.String() + "\n")
	}
	return sb.String(), nil
}
