package experiments

import (
	"strings"
	"testing"

	"github.com/weakgpu/gpulitmus/internal/chip"
)

// testOpts keeps CI runtimes reasonable while preserving shape checks:
// zero cells stay zero at any budget; non-zero cells with paper rates of a
// few per 100k need enough runs to appear, so shape tests use rates from
// tests whose paper rates are high.
func testOpts() Opts { return Opts{Runs: 8000, Seed: 20150314} }

func TestFig1Shape(t *testing.T) {
	tab, err := Fig1(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	row := tab.Meas[0]
	// coRR on Fermi/Kepler (columns 0-3), zero on Maxwell and AMD.
	for j := 0; j < 4; j++ {
		if row[j] == 0 {
			t.Errorf("Fig. 1: %s must show coRR", tab.Columns[j])
		}
	}
	for j := 4; j < 7; j++ {
		if row[j] != 0 {
			t.Errorf("Fig. 1: %s must not show coRR, got %d", tab.Columns[j], row[j])
		}
	}
	if !strings.Contains(tab.String(), "paper") {
		t.Error("table must print paper rows")
	}
}

func TestFig3Shape(t *testing.T) {
	tab, err := Fig3(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	cols := tab.Columns // GTX5 TesC GTX6 Titan GTX7
	idx := func(name string) int {
		for i, c := range cols {
			if c == name {
				return i
			}
		}
		t.Fatalf("no column %s", name)
		return -1
	}
	// No-fence row: weak on GTX5, TesC, GTX6, Titan.
	for _, c := range []string{"GTX5", "TesC", "GTX6", "Titan"} {
		if tab.Meas[0][idx(c)] == 0 {
			t.Errorf("Fig. 3 no-op: %s must be weak", c)
		}
	}
	// TesC stays weak on every fence row (the headline finding).
	for r := 1; r < 4; r++ {
		if tab.Meas[r][idx("TesC")] == 0 {
			t.Errorf("Fig. 3 %s: TesC must stay weak", tab.RowTags[r])
		}
	}
	// GTX5 is clean from membar.cta on; Titan weak at cta, clean at gl.
	for r := 1; r < 4; r++ {
		if tab.Meas[r][idx("GTX5")] != 0 {
			t.Errorf("Fig. 3 %s: GTX5 must be clean", tab.RowTags[r])
		}
	}
	if tab.Meas[1][idx("Titan")] == 0 {
		t.Error("Fig. 3 membar.cta: Titan must stay weak")
	}
	for r := 2; r < 4; r++ {
		if tab.Meas[r][idx("Titan")] != 0 {
			t.Errorf("Fig. 3 %s: Titan must be clean", tab.RowTags[r])
		}
	}
}

func TestFig4Shape(t *testing.T) {
	tab, err := Fig4(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	// TesC weak on all rows; GTX5 weak at no-op and cta, clean at gl/sys.
	for r := 0; r < 4; r++ {
		if tab.Meas[r][1] == 0 {
			t.Errorf("Fig. 4 %s: TesC must stay weak", tab.RowTags[r])
		}
	}
	if tab.Meas[0][0] == 0 || tab.Meas[1][0] == 0 {
		t.Error("Fig. 4: GTX5 must be weak at no-op and membar.cta")
	}
	if tab.Meas[2][0] != 0 || tab.Meas[3][0] != 0 {
		t.Error("Fig. 4: GTX5 must be clean at membar.gl and membar.sys")
	}
}

func TestFig5Shape(t *testing.T) {
	tab, err := Fig5(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 4; j++ {
		if tab.Meas[0][j] == 0 {
			t.Errorf("Fig. 5: %s must show mp-volatile", tab.Columns[j])
		}
	}
	if tab.Meas[0][4] != 0 {
		t.Errorf("Fig. 5: GTX7 must be clean, got %d", tab.Meas[0][4])
	}
}

func TestFig8NA(t *testing.T) {
	tab, err := Fig8(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	// HD6570 is n/a: its emulated compiler reorders the load past the CAS
	// and optcheck rejects the binary.
	idx := -1
	for j, c := range tab.Columns {
		if c == "HD6570" {
			idx = j
		}
	}
	if tab.Meas[0][idx] != NA {
		t.Errorf("Fig. 8: HD6570 must be n/a, got %d", tab.Meas[0][idx])
	}
	// HD7970 shows the behaviour strongly.
	for j, c := range tab.Columns {
		if c == "HD7970" && tab.Meas[0][j] == 0 {
			t.Error("Fig. 8: HD7970 must be weak")
		}
	}
}

func TestFig9And11Shape(t *testing.T) {
	tab, err := Fig9(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Kepler chips and both AMD chips show stale reads (paper: TesC 47,
	// GTX6 43, Titan 512, HD6570 508, HD7970 748); Titan has the highest
	// Nvidia rate, so check it at the modest test budget.
	for j, c := range tab.Columns {
		if c == "Titan" && tab.Meas[0][j] == 0 {
			t.Error("Fig. 9: Titan must show stale reads")
		}
		if c == "GTX7" && tab.Meas[0][j] != 0 {
			t.Error("Fig. 9: GTX7 must be clean")
		}
	}

	tab11, err := Fig11(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	for j, c := range tab11.Columns {
		if (c == "HD6570" || c == "HD7970") && tab11.Meas[0][j] != NA {
			t.Errorf("Fig. 11: %s must be n/a", c)
		}
	}
}

func TestRepairedFiguresSilent(t *testing.T) {
	tab, err := RepairedFigures(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range tab.Meas {
		for j, v := range row {
			if v != 0 {
				t.Errorf("repaired %s on %s: %d weak outcomes", tab.RowTags[i], tab.Columns[j], v)
			}
		}
	}
}

func TestTable6TitanClaims(t *testing.T) {
	tab, err := Table6(chip.GTXTitan, Opts{Runs: 4000, Seed: 20150314})
	if err != nil {
		t.Fatal(err)
	}
	if errs := Table6KeyClaims(tab); len(errs) > 0 {
		t.Errorf("Table 6 claims violated: %v", errs)
	}
}

func TestTable6HD7970(t *testing.T) {
	tab, err := Table6(chip.HD7970, Opts{Runs: 3000, Seed: 20150314})
	if err != nil {
		t.Fatal(err)
	}
	rowOf := func(tag string) []int {
		for i, rt := range tab.RowTags {
			if rt == tag {
				return tab.Meas[i]
			}
		}
		return nil
	}
	// lb present in every column; coRR absent everywhere.
	for k, v := range rowOf("lb") {
		if v == 0 {
			t.Errorf("HD7970 lb column %d must be weak", k+1)
		}
	}
	for k, v := range rowOf("coRR") {
		if v != 0 {
			t.Errorf("HD7970 coRR column %d must be clean, got %d", k+1, v)
		}
	}
}

func TestModelValidationSound(t *testing.T) {
	v, err := ModelValidation(40, 300, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Sound() {
		t.Errorf("validation unsound: %v", v.Unsound)
	}
	if v.Tests != 40 {
		t.Errorf("corpus size %d", v.Tests)
	}
	if v.WeakAllowed == 0 {
		t.Error("some generated weak outcomes must be allowed")
	}
}

func TestSorensenDivergence(t *testing.T) {
	s, err := SorensenDivergence()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "unsound") {
		t.Errorf("divergence report: %s", s)
	}
}

func TestCompilerChecks(t *testing.T) {
	checks, err := CompilerChecks()
	if err != nil {
		t.Fatal(err)
	}
	if len(checks) != 4 {
		t.Fatalf("want 4 Table 2 compiler rows, got %d", len(checks))
	}
	for _, c := range checks {
		if !c.Detected {
			t.Errorf("missed: %s", c.Issue)
		}
	}
}

func TestAblations(t *testing.T) {
	out, errs, err := Ablations(Opts{Runs: 6000, Seed: 20150314})
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) > 0 {
		t.Errorf("ablation expectations violated: %v\n%s", errs, out)
	}
}

func TestShapeErrorsDetectMismatch(t *testing.T) {
	tab := &Table{
		ID: "t", Columns: []string{"a"}, RowTags: []string{"r"},
		Meas:  [][]int{{5}},
		Paper: [][]int{{0}},
	}
	if len(tab.ShapeErrors()) != 1 {
		t.Error("zero/non-zero mismatch must be reported")
	}
	tab.Paper[0][0] = 3
	if len(tab.ShapeErrors()) != 0 {
		t.Error("both non-zero is shape-clean")
	}
}
