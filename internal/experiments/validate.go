package experiments

import (
	"fmt"
	"sort"
	"strings"

	"github.com/weakgpu/gpulitmus/internal/apps"
	"github.com/weakgpu/gpulitmus/internal/campaign"
	"github.com/weakgpu/gpulitmus/internal/chip"
	"github.com/weakgpu/gpulitmus/internal/core"
	"github.com/weakgpu/gpulitmus/internal/diy"
	"github.com/weakgpu/gpulitmus/internal/harness"
	"github.com/weakgpu/gpulitmus/internal/litmus"
	"github.com/weakgpu/gpulitmus/internal/optcheck"
	"github.com/weakgpu/gpulitmus/internal/sass"
)

// Validation is the Sec. 5.4 experiment: the model must allow every
// behaviour the (simulated) hardware exhibits.
type Validation struct {
	Tests        int // corpus size
	ChipsTested  []string
	WeakAllowed  int      // tests whose weak outcome the model allows
	WeakObserved int      // tests whose weak outcome some chip exhibited
	Unsound      []string // observed-but-forbidden (must be empty)
}

// Sound reports whether no observation fell outside the model.
func (v *Validation) Sound() bool { return len(v.Unsound) == 0 }

// String summarises the validation.
func (v *Validation) String() string {
	verdict := "SOUND: every observed behaviour is allowed by the model"
	if !v.Sound() {
		verdict = fmt.Sprintf("UNSOUND: %d observation(s) outside the model: %v", len(v.Unsound), v.Unsound)
	}
	return fmt.Sprintf("Model validation (Sec. 5.4 analogue): %d generated tests on %v; weak outcome allowed for %d, observed for %d; %s",
		v.Tests, v.ChipsTested, v.WeakAllowed, v.WeakObserved, verdict)
}

// ModelValidation generates a diy corpus, judges each test under the PTX
// model, runs it on the most relaxed simulated chips, and checks that every
// observed final state is the final state of some model-allowed execution.
// runsPerChip is the per-test per-chip iteration budget. Both phases run on
// the campaign engine's worker pool at the default parallelism.
func ModelValidation(maxTests, runsPerChip int, seed int64) (*Validation, error) {
	return ModelValidationP(maxTests, runsPerChip, seed, 0)
}

// ModelValidationP is ModelValidation with an explicit worker-pool bound
// (0 selects GOMAXPROCS). Results are identical for every parallelism.
func ModelValidationP(maxTests, runsPerChip int, seed int64, parallelism int) (*Validation, error) {
	return ModelValidationMemo(campaign.NewMemo(), maxTests, runsPerChip, seed, parallelism)
}

// ModelValidationMemo is ModelValidationP against a caller-owned memo, so
// an invocation running several experiments (gpuexplore's Report) shares
// one content-addressed analysis cache across them: any (model, test)
// content pair analysed here is free for every later experiment and vice
// versa. Results are identical to ModelValidationP's.
func ModelValidationMemo(memo *campaign.Memo, maxTests, runsPerChip int, seed int64, parallelism int) (*Validation, error) {
	corpus := diy.Generate(diy.DefaultPool(), 4, maxTests)
	profiles := []*chip.Profile{chip.TeslaC2075, chip.GTXTitan, chip.HD7970}
	m := core.PTX()
	v := &Validation{Tests: len(corpus), ChipsTested: chipNames(profiles)}

	tests := make([]*litmus.Test, len(corpus))
	for i, g := range corpus {
		tests[i] = g.Test
	}

	// Phase 1: memoized model analysis (candidate enumeration + verdicts)
	// of every test, in parallel on the pool. The memo is shared with the
	// aggregation phase, which then hits the cache only.
	if err := campaign.ForEach(len(tests), parallelism, func(i int) error {
		if _, err := memo.Analyse(m, tests[i]); err != nil {
			return fmt.Errorf("experiments: %s: %w", tests[i].Name, err)
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// Phase 2: the hardware sweep, corpus × most-relaxed chips, with the
	// per-cell seeds of the serial loop this replaced.
	agg, err := campaign.Run(campaign.Spec{
		Tests:       tests,
		Chips:       profiles,
		Runs:        runsPerChip,
		Parallelism: parallelism,
		SeedFn: func(j campaign.Job) int64 {
			return seed + int64(j.TestIndex)*971 + int64(j.ChipIndex)*31
		},
	})
	if err != nil {
		return nil, err
	}

	// Phase 3: aggregate in matrix order, so the report is deterministic
	// whatever the completion order was.
	for ti, test := range tests {
		info, err := memo.Analyse(m, test)
		if err != nil {
			return nil, err
		}
		if info.WeakAllowed {
			v.WeakAllowed++
		}
		weakObserved := false
		for pi, p := range profiles {
			out := agg.Outcome(ti, pi, 0)
			if out.Observed() {
				weakObserved = true
			}
			fps := make([]string, 0, len(out.Histogram))
			for fp := range out.Histogram {
				fps = append(fps, fp)
			}
			sort.Strings(fps)
			for _, fp := range fps {
				if !info.Allowed[fp] {
					v.Unsound = append(v.Unsound, fmt.Sprintf("%s on %s: %s", test.Name, p.ShortName, fp))
				}
			}
		}
		if weakObserved {
			v.WeakObserved++
		}
	}
	return v, nil
}

// SorensenDivergence reproduces the Sec. 6 refutation of the operational
// model: lb+membar.ctas is allowed by the paper's PTX model, forbidden by
// the operational model, and was observed on hardware (586/100k on Titan,
// 19/100k on GTX 660). Our simulator under-approximates here (its
// membar.cta orders loads for all observers), so the hardware evidence is
// quoted from the paper.
func SorensenDivergence() (string, error) {
	return SorensenDivergenceMemo(campaign.NewMemo())
}

// SorensenDivergenceMemo is SorensenDivergence with the verdicts served
// through a caller-owned memo; if the invocation already judged
// lb+membar.ctas under either model (content-addressed, whatever the
// pointer), the cached verdict is reused.
func SorensenDivergenceMemo(memo *campaign.Memo) (string, error) {
	test := litmus.LB(litmus.FenceCTA)
	ptxV, err := memo.Verdict(core.PTX(), test)
	if err != nil {
		return "", err
	}
	opV, err := memo.Verdict(core.SorensenOp(), test)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Sec. 6: %s\n", test.Name)
	fmt.Fprintf(&sb, "  PTX model (this paper):        allowed=%v (must be true)\n", ptxV.Observable)
	fmt.Fprintf(&sb, "  Operational model (Sorensen):  allowed=%v (must be false)\n", opV.Observable)
	fmt.Fprintf(&sb, "  Paper hardware observations:   Titan 586/100k, GTX 660 19/100k -> the operational model is unsound\n")
	fmt.Fprintf(&sb, "  (simulator note: our membar.cta waits for outstanding loads, an intentional\n")
	fmt.Fprintf(&sb, "   under-approximation that keeps the simulator sound w.r.t. the PTX model)\n")
	if !ptxV.Observable || opV.Observable {
		return "", fmt.Errorf("experiments: Sorensen divergence broken: ptx=%v op=%v", ptxV.Observable, opV.Observable)
	}
	return sb.String(), nil
}

// CompilerCheck is one Table 2 toolchain row reproduced through optcheck.
type CompilerCheck struct {
	Issue    string
	Detected bool
}

// CompilerChecks reproduces the compiler rows of Table 2: each emulated
// miscompilation must be caught by the Sec. 4.4 machinery.
func CompilerChecks() ([]CompilerCheck, error) {
	var out []CompilerCheck

	corrVolatile := litmus.NewTest("coRR-volatile").
		Global("x", 0).
		Thread("st.volatile [x],1").
		Thread("ld.volatile r1,[x]", "ld.volatile r2,[x]").
		IntraCTA().
		Exists("1:r1=1 /\\ 1:r2=0").
		MustBuild()
	vs, err := optcheck.Verify(corrVolatile, sass.Options{Level: sass.O3, VolatileReorderBug: true})
	if err != nil {
		return nil, err
	}
	out = append(out, CompilerCheck{"CUDA 5.5 reorders volatile loads (coRR, Sec. 4.4)", len(vs) > 0})

	vs, err = optcheck.Verify(litmus.DlbLB(false), sass.Options{Level: sass.O3, ReorderLoadCAS: true})
	if err != nil {
		return nil, err
	}
	out = append(out, CompilerCheck{"TeraScale 2 reorders load and CAS (dlb-lb, Sec. 3.2.1)", len(vs) > 0})

	vs, err = optcheck.Verify(litmus.CoRR(), sass.Options{Level: sass.O3, EliminateRedundantLoads: true})
	if err != nil {
		return nil, err
	}
	out = append(out, CompilerCheck{"AMD merges loads from the same location (coRR, Sec. 4.4)", len(vs) > 0})

	// GCN 1.0 removes fences between loads: detected by fence counting
	// (the access sequence itself is unchanged).
	spec, err := optcheck.AddSpec(litmus.MP(litmus.FenceGL))
	if err != nil {
		return nil, err
	}
	buggy, err := sass.Compile(spec, 1, sass.Options{Level: sass.O3, RemoveFencesBetweenLoads: true})
	if err != nil {
		return nil, err
	}
	fences := 0
	for _, i := range buggy {
		if i.Op == sass.OpMEMBAR {
			fences++
		}
	}
	out = append(out, CompilerCheck{"GCN 1.0 removes fences between loads (mp, Sec. 3.1.2)", fences == 0})
	return out, nil
}

// AppStudies runs the Sec. 3.2 applications on a weak and a strong chip:
// the broken variants must fail on the weak chip and the repaired variants
// must succeed everywhere. The per-app runs execute in parallel on the
// campaign pool; the report renders in app order regardless.
func AppStudies(o Opts) (string, []string, error) {
	var sb strings.Builder
	var errs []string
	weak, strong := chip.GTXTitan, chip.GTX280
	runs := o.Runs / 4
	if runs < 2000 {
		runs = 2000
	}
	all := apps.All()
	type appResult struct {
		weak, strong *apps.Report
	}
	results := make([]appResult, len(all))
	if err := campaign.ForEach(len(all), 0, func(i int) error {
		a := all[i]
		wRep, err := a.Run(weak, chip.Default(), runs, o.Seed)
		if err != nil {
			return err
		}
		sRep, err := a.Run(strong, chip.Default(), runs/4, o.Seed+1)
		if err != nil {
			return err
		}
		results[i] = appResult{weak: wRep, strong: sRep}
		return nil
	}); err != nil {
		return "", nil, err
	}
	for i, a := range all {
		repaired := strings.Contains(a.Name, "+fences") || strings.Contains(a.Name, "+fixed")
		wRep, sRep := results[i].weak, results[i].strong
		fmt.Fprintf(&sb, "  %-28s %-32s %s\n", a.Name, wRep.String()[len(a.Name)+1:], sRep.String()[len(a.Name)+1:])
		if repaired && wRep.Violations > 0 {
			errs = append(errs, fmt.Sprintf("%s must be correct on %s", a.Name, weak.ShortName))
		}
		if sRep.Violations > 0 {
			errs = append(errs, fmt.Sprintf("%s must be correct on %s", a.Name, strong.ShortName))
		}
	}
	return sb.String(), errs, nil
}

// ablate clones a profile and applies a modification (the DESIGN.md
// ablations).
func ablate(p *chip.Profile, name string, f func(*chip.Profile)) *chip.Profile {
	cp := *p
	cp.ShortName = p.ShortName + "-" + name
	f(&cp)
	return &cp
}

// Ablations runs the design-decision ablations D1-D4 of DESIGN.md on the
// Titan profile and reports the observation deltas. The eight cells (a
// baseline and an ablated run per decision) execute in parallel on the
// campaign pool; rendering and checks happen in D1-D4 order afterwards.
func Ablations(o Opts) (string, []string, error) {
	base := chip.GTXTitan

	// D1: force in-order synchronous stores — sb disappears.
	d1 := ablate(base, "no-sb", func(p *chip.Profile) { p.PStoreDelay = 0; p.PWWCommit = 0 })
	// D2: coherent L1 — mp-L1 under membar.cta disappears (stale lines
	// were the only mechanism surviving the fence).
	d2 := ablate(base, "coherent-l1", func(p *chip.Profile) { p.PStaleL1 = 0; p.PCoRRMixed = 0 })
	// D3: no same-location read reordering — coRR disappears (SC per
	// location restored in full).
	d3 := ablate(base, "no-corr", func(p *chip.Profile) { p.PCoRR = 0 })
	// D4: flat incantation response — weak behaviour appears even without
	// memory stress, flattening Table 6's zero structure.
	d4 := ablate(base, "flat-incant", func(p *chip.Profile) {
		p.Response = map[chip.Class]chip.Coef{
			chip.Intra: {Base: 1, Max: 1},
			chip.Inter: {Base: 1, Max: 1},
			chip.Stale: {Base: 1, Max: 1},
		}
	})

	checks := []struct {
		tag      string
		test     *litmus.Test
		chip     *chip.Profile
		wantZero bool
		salt     int64
	}{
		{"D1 baseline (store buffering on)", litmus.SBGlobal(), base, false, 900},
		{"D1 ablated (synchronous stores)", litmus.SBGlobal(), d1, true, 901},
		{"D2 baseline (non-coherent L1)", litmus.MPL1(litmus.FenceCTA), base, false, 902},
		{"D2 ablated (no stale lines)", litmus.MPL1(litmus.FenceCTA), d2, true, 903},
		{"D3 baseline (load-load hazard)", litmus.CoRR(), base, false, 904},
		{"D3 ablated (SC per location)", litmus.CoRR(), d3, true, 905},
	}
	quiet := chip.Incant{} // no incantations at all
	vals := make([]int, len(checks))
	var outBase, outFlat *harness.Outcome
	if err := campaign.ForEach(len(checks)+2, 0, func(i int) error {
		var err error
		switch {
		case i < len(checks):
			vals[i], err = cell(checks[i].test, checks[i].chip, o, checks[i].salt)
		case i == len(checks):
			outBase, err = harness.Run(litmus.SBGlobal(), harness.Config{Chip: base, Incant: quiet, Runs: o.Runs, Seed: o.Seed + 906, Parallelism: 1})
		default:
			outFlat, err = harness.Run(litmus.SBGlobal(), harness.Config{Chip: d4, Incant: quiet, Runs: o.Runs, Seed: o.Seed + 907, Parallelism: 1})
		}
		return err
	}); err != nil {
		return "", nil, err
	}

	var sb strings.Builder
	var errs []string
	for i, c := range checks {
		fmt.Fprintf(&sb, "  %-44s %s: %d/100k\n", c.tag, c.test.Name, vals[i])
		if c.wantZero && vals[i] != 0 {
			errs = append(errs, fmt.Sprintf("%s: expected 0, got %d", c.tag, vals[i]))
		}
		if !c.wantZero && vals[i] == 0 {
			errs = append(errs, fmt.Sprintf("%s: expected >0, got 0", c.tag))
		}
	}
	fmt.Fprintf(&sb, "  %-44s sb without incantations: %d/100k\n", "D4 baseline (coupled incantations)", outBase.Per100k())
	fmt.Fprintf(&sb, "  %-44s sb without incantations: %d/100k\n", "D4 ablated (flat response)", outFlat.Per100k())
	if outBase.Observed() {
		errs = append(errs, "D4: baseline must show nothing without incantations")
	}
	if !outFlat.Observed() {
		errs = append(errs, "D4: flat response must show sb without incantations")
	}
	return sb.String(), errs, nil
}
