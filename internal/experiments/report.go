package experiments

import (
	"fmt"
	"strings"

	"github.com/weakgpu/gpulitmus/internal/campaign"
	"github.com/weakgpu/gpulitmus/internal/chip"
)

// Report regenerates every experiment and formats a complete
// paper-vs-measured document (the content of EXPERIMENTS.md).
// validationTests and validationRuns bound the Sec. 5.4 corpus.
func Report(o Opts, validationTests, validationRuns int) (string, error) {
	var sb strings.Builder
	sb.WriteString("# EXPERIMENTS: paper vs. measured\n\n")
	fmt.Fprintf(&sb, "Per-cell budget: %d runs (observations scaled to /100k); seed %d.\n", o.Runs, o.Seed)
	sb.WriteString("Hardware is simulated per the substitution documented in DESIGN.md; the\n")
	sb.WriteString("comparison target is the *shape* of each table (zero vs non-zero cells,\n")
	sb.WriteString("orderings of magnitude), not absolute counts.\n\n")

	var shapeErrs []string
	figures := []func(Opts) (*Table, error){Fig1, Fig3, Fig4, Fig5, Fig7, Fig8, Fig9, Fig11, RepairedFigures}
	sb.WriteString("## Weak behaviours and programming assumptions (Sec. 3)\n\n")
	for _, fig := range figures {
		t, err := fig(o)
		if err != nil {
			return "", err
		}
		sb.WriteString("```\n" + t.String() + "```\n\n")
		shapeErrs = append(shapeErrs, t.ShapeErrors()...)
	}

	sb.WriteString("## Incantations (Sec. 4.3, Table 6)\n\n")
	sb.WriteString("Columns 1-16 are the binary incantation combinations (memory stress high\n")
	sb.WriteString("bit, then bank conflicts, thread synchronisation, thread randomisation).\n\n")
	for _, p := range table6Chips() {
		t6, err := Table6(p, o)
		if err != nil {
			return "", err
		}
		sb.WriteString("```\n" + t6.String() + "```\n\n")
		if p.ShortName == "Titan" {
			if claims := Table6KeyClaims(t6); len(claims) > 0 {
				shapeErrs = append(shapeErrs, claims...)
			}
		}
	}

	// One content-addressed memo for the whole invocation: every model
	// analysis or verdict any experiment computes is shared with the rest
	// (the validation corpus and the Sec. 6 refutation both judge under the
	// PTX model, and repeated test content hits the same entry whatever the
	// construction path).
	memo := campaign.NewMemo()

	sb.WriteString("## Model validation (Sec. 5.4)\n\n")
	v, err := ModelValidationMemo(memo, validationTests, validationRuns, o.Seed, 0)
	if err != nil {
		return "", err
	}
	sb.WriteString(v.String() + "\n\n")

	sb.WriteString("## Operational-model refutation (Sec. 6)\n\n")
	sd, err := SorensenDivergenceMemo(memo)
	if err != nil {
		return "", err
	}
	sb.WriteString("```\n" + sd + "```\n\n")

	sb.WriteString("## Compiler checks (Sec. 4.4, Table 2)\n\n")
	checks, err := CompilerChecks()
	if err != nil {
		return "", err
	}
	for _, c := range checks {
		state := "DETECTED"
		if !c.Detected {
			state = "MISSED"
			shapeErrs = append(shapeErrs, "compiler check missed: "+c.Issue)
		}
		fmt.Fprintf(&sb, "- %-60s %s\n", c.Issue, state)
	}
	sb.WriteString("\n## Application studies (Sec. 3.2)\n\n```\n")
	appsOut, appErrs, err := AppStudies(o)
	if err != nil {
		return "", err
	}
	sb.WriteString(appsOut)
	shapeErrs = append(shapeErrs, appErrs...)

	sb.WriteString("```\n\n## Ablations (DESIGN.md D1-D4)\n\n```\n")
	abl, ablErrs, err := Ablations(o)
	if err != nil {
		return "", err
	}
	sb.WriteString(abl)
	shapeErrs = append(shapeErrs, ablErrs...)
	sb.WriteString("```\n\n## Deviations\n\n")
	if len(shapeErrs) == 0 && v.Sound() {
		sb.WriteString("None: every zero/non-zero cell matches the paper, the repaired variants\n")
		sb.WriteString("are silent, and the model is sound for every simulated observation.\n")
	} else {
		for _, e := range shapeErrs {
			sb.WriteString("- " + e + "\n")
		}
		if !v.Sound() {
			sb.WriteString("- " + v.String() + "\n")
		}
	}
	sb.WriteString("\n## Known limitations of the substitution\n\n")
	sb.WriteString("- Magnitudes are calibrated per chip to within a small factor of the\n")
	sb.WriteString("  paper's counts, not matched exactly (no silicon; see DESIGN.md).\n")
	sb.WriteString("- Our simulated GTX 660 under-produces dlb-mp (paper: 36/100k): raising\n")
	sb.WriteString("  its write-commit reordering would contradict its near-clean mp-L1\n")
	sb.WriteString("  membar.cta row (paper: 14/100k), so the conservative rate is kept.\n")
	sb.WriteString("- The simulator's membar.cta waits for the thread's outstanding loads,\n")
	sb.WriteString("  so it never exhibits inter-CTA lb+membar.ctas (paper: 586/100k on\n")
	sb.WriteString("  Titan). This deliberate under-approximation keeps the simulator sound\n")
	sb.WriteString("  w.r.t. the PTX model; the Sec. 6 refutation is shown at model level.\n")
	return sb.String(), nil
}

// table6Chips returns the two Table 6 chips.
func table6Chips() []*chip.Profile { return []*chip.Profile{chip.GTXTitan, chip.HD7970} }
