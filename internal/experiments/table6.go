package experiments

import (
	"github.com/weakgpu/gpulitmus/internal/campaign"
	"github.com/weakgpu/gpulitmus/internal/chip"
	"github.com/weakgpu/gpulitmus/internal/litmus"
)

// Table 6 of the paper: observations for the 16 incantation combinations,
// Titan and HD 7970, tests coRR (intra-CTA) and lb/mp/sb (inter-CTA).
var (
	paperTable6Titan = map[string][]int{
		"coRR": {0, 0, 0, 0, 0, 1235, 0, 9774, 161, 118, 847, 362, 632, 3384, 3993, 9985},
		"lb":   {0, 0, 0, 0, 0, 0, 0, 0, 181, 1067, 1555, 2247, 4, 37, 83, 486},
		"mp":   {0, 0, 0, 0, 0, 621, 0, 2921, 315, 1128, 2372, 4347, 7, 94, 442, 2888},
		"sb":   {0, 0, 0, 0, 0, 0, 0, 0, 462, 1403, 3308, 6673, 3, 50, 88, 749},
	}
	paperTable6HD7970 = map[string][]int{
		"coRR": {0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		"lb":   {10959, 8979, 31895, 29092, 13510, 12729, 29779, 26737, 5094, 9360, 37624, 38664, 5321, 10054, 32796, 34196},
		"mp":   {212, 31, 243, 158, 277, 46, 318, 247, 473, 217, 1289, 563, 611, 339, 2542, 1628},
		"sb":   {0, 0, 0, 0, 2, 0, 2, 0, 0, 0, 0, 0, 0, 0, 0, 0},
	}
)

// table6Tests are the four idioms of Table 6 (all on global memory).
func table6Tests() []*litmus.Test {
	return []*litmus.Test{
		litmus.CoRR(),             // intra-CTA
		litmus.LB(litmus.NoFence), // inter-CTA
		litmus.MP(litmus.NoFence), // inter-CTA
		litmus.SBGlobal(),         // inter-CTA
	}
}

var table6Tags = []string{"coRR", "lb", "mp", "sb"}

// Table6 reproduces the incantation grid for one chip (Titan or HD7970 in
// the paper): one campaign over the four idioms × all 16 incantation
// combinations. Column k (1-based) corresponds to chip.AllIncants()[k-1];
// per-cell seeds match the serial harness.RunAllIncants loop this replaced.
func Table6(p *chip.Profile, o Opts) (*Table, error) {
	paper := paperTable6Titan
	if p.ShortName == "HD7970" {
		paper = paperTable6HD7970
	}
	cols := make([]string, 16)
	for i, inc := range chip.AllIncants() {
		cols[i] = inc.String()
	}
	agg, err := campaign.Run(campaign.Spec{
		Tests:   table6Tests(),
		Chips:   []*chip.Profile{p},
		Incants: chip.AllIncants(),
		Runs:    o.Runs,
		SeedFn: func(j campaign.Job) int64 {
			return o.Seed + int64(j.TestIndex)*7_000_003 + int64(j.IncantIndex)*1_000_003
		},
		Sink: o.Sink,
	})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "Table 6 (" + p.ShortName + ")", Title: "observations per incantation combination",
		Columns: cols,
		RowTags: table6Tags,
		Runs:    o.Runs,
	}
	for ti := range agg.Tests {
		row := make([]int, 16)
		for ii := 0; ii < 16; ii++ {
			row[ii] = agg.Outcome(ti, 0, ii).Per100k()
		}
		t.Meas = append(t.Meas, row)
		t.Paper = append(t.Paper, paper[table6Tags[ti]])
	}
	return t, nil
}

// Table6KeyClaims checks the paper's headline observations about
// incantations on the Titan reproduction (Sec. 4.3):
//
//  1. sb and lb are never observed without memory stress (columns 1-8);
//  2. bank conflicts alone expose nothing (column 5);
//  3. thread synchronisation boosts inter-CTA tests (column 12 vs 10);
//  4. thread randomisation boosts coRR (column 16 vs 15).
//
// It returns a description per violated claim.
func Table6KeyClaims(t *Table) []string {
	var errs []string
	rowOf := func(tag string) []int {
		for i, rt := range t.RowTags {
			if rt == tag {
				return t.Meas[i]
			}
		}
		return nil
	}
	for _, tag := range []string{"lb", "sb"} {
		row := rowOf(tag)
		for k := 0; k < 8; k++ {
			if row[k] != 0 {
				errs = append(errs, "claim 1: "+tag+" observed without memory stress")
				break
			}
		}
	}
	for _, tag := range table6Tags {
		if rowOf(tag)[4] != 0 {
			errs = append(errs, "claim 2: "+tag+" observed with bank conflicts alone")
		}
	}
	if mp := rowOf("mp"); mp[11] <= mp[9] {
		errs = append(errs, "claim 3: thread synchronisation does not boost mp")
	}
	if corr := rowOf("coRR"); corr[15] <= corr[14] {
		errs = append(errs, "claim 4: thread randomisation does not boost coRR")
	}
	return errs
}
