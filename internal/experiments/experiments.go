// Package experiments regenerates every empirical table and figure of the
// paper on the simulated chips: Figs. 1, 3, 4, 5 (weak behaviours), Figs.
// 7, 8, 9, 11 (programming assumptions), Table 6 (incantations), the Sec.
// 5.4 model validation, the Sec. 4.4 compiler checks, the Sec. 3.2
// application studies, and the ablations of DESIGN.md. Each experiment
// prints measured observations per 100k runs next to the paper's numbers.
package experiments

import (
	"fmt"
	"strings"

	"github.com/weakgpu/gpulitmus/internal/campaign"
	"github.com/weakgpu/gpulitmus/internal/chip"
	"github.com/weakgpu/gpulitmus/internal/harness"
	"github.com/weakgpu/gpulitmus/internal/litmus"
	"github.com/weakgpu/gpulitmus/internal/obs"
)

// NA marks an untestable cell (the paper's "n/a").
const NA = -1

// Table is one reproduced table or figure.
type Table struct {
	ID      string // "Fig. 1"
	Title   string
	Columns []string
	RowTags []string
	Runs    int     // per-cell iteration budget of the measured rows
	Meas    [][]int // measured observations per 100k (NA allowed)
	Paper   [][]int // the paper's numbers (NA allowed)
}

// String renders measured-vs-paper rows.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %s (obs/100k)\n", t.ID, t.Title)
	width := 12
	fmt.Fprintf(&sb, "%-14s %-9s", "", "")
	for _, c := range t.Columns {
		fmt.Fprintf(&sb, "%*s", width, c)
	}
	sb.WriteString("\n")
	for i, tag := range t.RowTags {
		for pass := 0; pass < 2; pass++ {
			kind := "measured"
			row := t.Meas[i]
			if pass == 1 {
				kind = "paper"
				row = t.Paper[i]
			}
			fmt.Fprintf(&sb, "%-14s %-9s", tag, kind)
			for _, v := range row {
				if v == NA {
					fmt.Fprintf(&sb, "%*s", width, "n/a")
				} else {
					fmt.Fprintf(&sb, "%*d", width, v)
				}
			}
			sb.WriteString("\n")
		}
	}
	return sb.String()
}

// ShapeErrors compares the measured table to the paper's numbers on the
// property that matters for correctness claims: a cell is zero in one iff
// it is zero (or n/a) in the other. It returns a description per deviation.
func (t *Table) ShapeErrors() []string {
	var errs []string
	for i := range t.RowTags {
		for j := range t.Columns {
			m, p := t.Meas[i][j], t.Paper[i][j]
			if m == NA || p == NA {
				if m != p {
					errs = append(errs, fmt.Sprintf("%s [%s, %s]: measured %d vs paper n/a-mismatch %d", t.ID, t.RowTags[i], t.Columns[j], m, p))
				}
				continue
			}
			if (m == 0) != (p == 0) {
				// A paper rate too small for the measured budget to
				// sample is a statistics limit, not a shape error: with
				// rate p/100k over Runs iterations only a handful of
				// events are expected, and our per-chip rates are
				// calibrated to within a small factor of the paper's
				// (see EXPERIMENTS.md), so cells expecting fewer than
				// ~12 events cannot be distinguished from zero.
				if m == 0 && t.Runs > 0 && float64(p)*float64(t.Runs)/100000.0 < 12 {
					continue
				}
				errs = append(errs, fmt.Sprintf("%s [%s, %s]: measured %d vs paper %d (zero/non-zero mismatch)", t.ID, t.RowTags[i], t.Columns[j], m, p))
			}
		}
	}
	return errs
}

// Opts parameterise an experiment run.
type Opts struct {
	Runs int   // iterations per cell (scaled to per-100k in output)
	Seed int64 // base seed
	// Sink, when set, receives one obs.CellEvent per campaign cell of
	// every sweep the experiments run (figures, Table 6, application
	// studies, ablations). Events arrive concurrently from the worker
	// pool — see campaign.Spec.Sink — and cell indices are local to each
	// sweep. The gpuexplore -progress flag prints live lines from them.
	Sink func(obs.CellEvent)
}

// DefaultOpts uses a reduced per-cell budget suitable for test suites; use
// Runs: harness.DefaultRuns for paper-scale runs.
func DefaultOpts() Opts { return Opts{Runs: 20000, Seed: 20150314} }

// effectiveIncant applies the paper's "most effective incantations"
// (Sec. 3): per Table 6 that is memory stress + sync + randomisation for
// inter-CTA tests (column 12) and all four for intra-CTA tests (column 16).
func effectiveIncant(t *litmus.Test, base chip.Incant) chip.Incant {
	if len(t.Scope.CTAs) == 1 {
		base.BankConflicts = true
	}
	return base
}

// cell runs one test on one chip and returns observations scaled to 100k.
// Its callers run cells concurrently on the campaign pool, so the harness
// itself stays serial.
func cell(t *litmus.Test, p *chip.Profile, o Opts, salt int64) (int, error) {
	out, err := harness.Run(t, harness.Config{
		Chip:        p,
		Incant:      effectiveIncant(t, chip.Default()),
		Runs:        o.Runs,
		Seed:        o.Seed + salt,
		Parallelism: 1,
	})
	if err != nil {
		return 0, err
	}
	return out.Per100k(), nil
}

// sweepCells runs a figure-shaped campaign — tests × chips under the
// effective incantations — with per-cell seeds o.Seed + salt(testIndex,
// chipIndex), matching the seeds the serial loops used so measured numbers
// are unchanged by the concurrent engine.
func sweepCells(tests []*litmus.Test, chips []*chip.Profile, o Opts, salt func(ti, ci int) int64) (*campaign.Aggregate, error) {
	return campaign.Run(campaign.Spec{
		Tests:    tests,
		Chips:    chips,
		IncantFn: effectiveIncant,
		Runs:     o.Runs,
		SeedFn:   func(j campaign.Job) int64 { return o.Seed + salt(j.TestIndex, j.ChipIndex) },
		Sink:     o.Sink,
	})
}

// per100kRows extracts the aggregate's Per100k grid in (test, chip) order.
func per100kRows(agg *campaign.Aggregate) [][]int {
	rows := make([][]int, len(agg.Tests))
	for ti := range agg.Tests {
		row := make([]int, len(agg.Chips))
		for ci := range agg.Chips {
			row[ci] = agg.Outcome(ti, ci, 0).Per100k()
		}
		rows[ti] = row
	}
	return rows
}

func chipNames(ps []*chip.Profile) []string {
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.ShortName
	}
	return names
}
