package experiments

import (
	"github.com/weakgpu/gpulitmus/internal/chip"
	"github.com/weakgpu/gpulitmus/internal/litmus"
	"github.com/weakgpu/gpulitmus/internal/optcheck"
	"github.com/weakgpu/gpulitmus/internal/sass"
)

// The paper's observation tables, in the chip order of the figures.
var (
	paperFig1 = []int{11642, 8879, 9599, 9787, 0, 0, 0}
	paperFig3 = [][]int{
		{4979, 10581, 3635, 6011, 3},
		{0, 308, 14, 1696, 0},
		{0, 187, 0, 0, 0},
		{0, 162, 0, 0, 0},
	}
	paperFig4 = [][]int{
		{2556, 2982, 2, 141, 0},
		{1934, 2180, 0, 0, 0},
		{0, 1496, 0, 0, 0},
		{0, 1428, 0, 0, 0},
	}
	paperFig5  = []int{6301, 4977, 2753, 2188, 0}
	paperFig7  = []int{0, 4, 36, 65, 0, 0, 0}
	paperFig8  = []int{0, 750, 399, 2292, 0, NA, 13591}
	paperFig9  = []int{0, 47, 43, 512, 0, 508, 748}
	paperFig11 = []int{0, 99, 41, 58, 0, NA, NA}
)

// singleRowFigure sweeps one test across the chips through the campaign
// engine, per-cell seed o.Seed + saltBase + chipIndex.
func singleRowFigure(id, title string, test *litmus.Test, chips []*chip.Profile, paper []int, o Opts, saltBase int64) (*Table, error) {
	agg, err := sweepCells([]*litmus.Test{test}, chips, o,
		func(ti, ci int) int64 { return saltBase + int64(ci) })
	if err != nil {
		return nil, err
	}
	return &Table{
		ID: id, Title: title,
		Columns: chipNames(chips),
		RowTags: []string{test.Name},
		Runs:    o.Runs,
		Meas:    per100kRows(agg),
		Paper:   [][]int{paper},
	}, nil
}

// Fig1 reproduces the coRR observations of Fig. 1 across the result chips.
func Fig1(o Opts) (*Table, error) {
	return singleRowFigure("Fig. 1", "PTX test for coherent reads (coRR)",
		litmus.CoRR(), chip.ResultChips(), paperFig1, o, 0)
}

// fenceTable runs a fence-parameterised test over the Nvidia result chips,
// the shape of Figs. 3 and 4: one campaign whose test axis is the maker
// expanded at every fence strength.
func fenceTable(id, title string, mk func(litmus.Fence) *litmus.Test, paper [][]int, o Opts) (*Table, error) {
	chips := chip.NvidiaResultChips()
	agg, err := sweepCells(fenceVariants(mk), chips, o,
		func(ti, ci int) int64 { return int64(ti*31 + ci) })
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: id, Title: title,
		Columns: chipNames(chips),
		Runs:    o.Runs,
		Meas:    per100kRows(agg),
		Paper:   paper,
	}
	for _, f := range litmus.Fences {
		t.RowTags = append(t.RowTags, f.Name())
	}
	return t, nil
}

// fenceVariants expands a fence-parameterised maker at every fence
// strength, in Figs. 3-4 row order.
func fenceVariants(mk func(litmus.Fence) *litmus.Test) []*litmus.Test {
	tests := make([]*litmus.Test, len(litmus.Fences))
	for i, f := range litmus.Fences {
		tests[i] = mk(f)
	}
	return tests
}

// Fig3 reproduces mp-L1 under each fence strength.
func Fig3(o Opts) (*Table, error) {
	return fenceTable("Fig. 3", "PTX mp w/ L1 cache operators (mp-L1)", litmus.MPL1, paperFig3, o)
}

// Fig4 reproduces coRR-L2-L1 under each fence strength.
func Fig4(o Opts) (*Table, error) {
	return fenceTable("Fig. 4", "PTX coRR mixing cache operators (coRR-L2-L1)", litmus.CoRRL2L1, paperFig4, o)
}

// Fig5 reproduces mp-volatile on shared memory.
func Fig5(o Opts) (*Table, error) {
	return singleRowFigure("Fig. 5", "PTX mp with volatiles (mp-volatile)",
		litmus.MPVolatile(), chip.NvidiaResultChips(), paperFig5, o, 100)
}

// assumptionFigure runs one programming-assumption test across all result
// chips, marking a chip n/a when its emulated toolchain miscompiles the
// test (detected with optcheck) or, for naFixed chips, when the paper
// could not test it at all. The testable chips are swept as one campaign;
// per-cell seeds keep the chip's position in the full result-chip list so
// the n/a filtering does not shift any measured cell.
func assumptionFigure(id, title string, test *litmus.Test, paper []int, miscompile map[string]sass.Options, naFixed map[string]bool, o Opts, salt int64) (*Table, error) {
	chips := chip.ResultChips()
	t := &Table{
		ID: id, Title: title,
		Columns: chipNames(chips),
		RowTags: []string{test.Name},
		Runs:    o.Runs,
		Paper:   [][]int{paper},
	}
	row := make([]int, len(chips))
	var testable []*chip.Profile
	var origIndex []int
	for j, p := range chips {
		if naFixed[p.ShortName] {
			row[j] = NA
			continue
		}
		if opts, ok := miscompile[p.ShortName]; ok {
			// The paper marks the chip n/a when its compiler rewrites the
			// test; we detect that with optcheck rather than asserting it.
			vs, err := optcheck.Verify(test, opts)
			if err != nil {
				return nil, err
			}
			if len(vs) > 0 {
				row[j] = NA
				continue
			}
		}
		testable = append(testable, p)
		origIndex = append(origIndex, j)
	}
	if len(testable) == 0 { // every chip n/a: a valid all-NA row
		t.Meas = [][]int{row}
		return t, nil
	}
	agg, err := sweepCells([]*litmus.Test{test}, testable, o,
		func(ti, ci int) int64 { return salt + int64(origIndex[ci]) })
	if err != nil {
		return nil, err
	}
	for ci := range testable {
		row[origIndex[ci]] = agg.Outcome(0, ci, 0).Per100k()
	}
	t.Meas = [][]int{row}
	return t, nil
}

// Fig7 reproduces dlb-mp, the deque's message-passing bug.
func Fig7(o Opts) (*Table, error) {
	return assumptionFigure("Fig. 7", "PTX mp from load-balancing (dlb-mp)",
		litmus.DlbMP(false), paperFig7, nil, nil, o, 200)
}

// Fig8 reproduces dlb-lb; HD 6570 is n/a because the TeraScale 2 compiler
// reorders the load past the CAS, which optcheck detects (Sec. 3.2.1).
func Fig8(o Opts) (*Table, error) {
	return assumptionFigure("Fig. 8", "PTX lb from load-balancing (dlb-lb)",
		litmus.DlbLB(false), paperFig8,
		map[string]sass.Options{
			"HD6570": {Level: sass.O3, ReorderLoadCAS: true},
		}, nil, o, 300)
}

// Fig9 reproduces cas-sl, the CUDA by Example spin-lock stale read.
func Fig9(o Opts) (*Table, error) {
	return assumptionFigure("Fig. 9", "PTX compare-and-swap spin lock (cas-sl)",
		litmus.CasSL(false), paperFig9, nil, nil, o, 400)
}

// Fig11 reproduces sl-future; the AMD chips are n/a because the OpenCL
// compiler inserts fences automatically (Sec. 3.2).
func Fig11(o Opts) (*Table, error) {
	return assumptionFigure("Fig. 11", "PTX spin lock future value test (sl-future)",
		litmus.SlFuture(false), paperFig11, nil,
		map[string]bool{"HD6570": true, "HD7970": true}, o, 500)
}

// RepairedFigures verifies the (+)-fenced variant of every programming-
// assumption figure shows zero weak outcomes on every chip — the paper's
// "adding the fences forbids this behaviour in our experiments".
func RepairedFigures(o Opts) (*Table, error) {
	chips := chip.ResultChips()
	tests := []*litmus.Test{litmus.DlbMP(true), litmus.DlbLB(true), litmus.CasSL(true), litmus.SlFuture(true)}
	agg, err := sweepCells(tests, chips, o,
		func(ti, ci int) int64 { return int64(600 + ti*17 + ci) })
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "Figs. 7-11 (+)", Title: "repaired variants (fences added)",
		Columns: chipNames(chips),
		Runs:    o.Runs,
		Meas:    per100kRows(agg),
	}
	for range tests {
		t.Paper = append(t.Paper, make([]int, len(chips)))
	}
	for _, test := range tests {
		t.RowTags = append(t.RowTags, test.Name)
	}
	return t, nil
}
