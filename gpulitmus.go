// Package gpulitmus is a pure-Go reproduction of the system behind
// "GPU Concurrency: Weak Behaviours and Programming Assumptions"
// (Alglave et al., ASPLOS 2015): a litmus-testing framework for GPU memory
// consistency, an operational simulator of the paper's eight GPUs, the
// diy-style test generator, the opcheck compiler-interference checker, and
// the paper's formal PTX memory model (SPARC RMO stratified per GPU scope)
// with a herd-style simulator.
//
// Quick start:
//
//	test := gpulitmus.MustParseTest(src)           // or gpulitmus.TestByName("coRR")
//	out, _ := gpulitmus.Run(test, gpulitmus.RunConfig{Chip: gpulitmus.ChipTitan})
//	fmt.Println(out)                               // histogram + Observation line
//	v, _ := gpulitmus.Judge(test)                  // is the outcome allowed by the model?
//	fmt.Println(v)
//
// Cross-test sweeps — the shape of every result table in the paper — go
// through the concurrent campaign engine rather than a serial loop:
//
//	res, _ := gpulitmus.Sweep(gpulitmus.Campaign{
//		Tests: gpulitmus.PaperTests(),
//		Chips: gpulitmus.Chips(),
//		Runs:  10000,
//		Seed:  1,
//	})
//	fmt.Println(res.Outcome(0, 0, 0))              // first test on first chip
//
// A Campaign expands its matrix (tests × chips × incantations × fences)
// into jobs, executes them on a bounded work-stealing worker pool, and
// aggregates outcomes in matrix order. Per-job seeds derive
// deterministically from the base seed, so results are byte-identical for
// every worker count. SweepStream delivers outcomes as they complete for
// progress-oriented consumers.
//
// The hardware the paper measured is simulated; see DESIGN.md for the
// substitution argument and EXPERIMENTS.md for paper-vs-measured tables.
package gpulitmus

import (
	"context"
	"net"

	"github.com/weakgpu/gpulitmus/internal/analysis"
	"github.com/weakgpu/gpulitmus/internal/apps"
	"github.com/weakgpu/gpulitmus/internal/campaign"
	"github.com/weakgpu/gpulitmus/internal/chip"
	"github.com/weakgpu/gpulitmus/internal/core"
	"github.com/weakgpu/gpulitmus/internal/diy"
	"github.com/weakgpu/gpulitmus/internal/harness"
	"github.com/weakgpu/gpulitmus/internal/litmus"
	"github.com/weakgpu/gpulitmus/internal/obs"
	"github.com/weakgpu/gpulitmus/internal/optcheck"
	"github.com/weakgpu/gpulitmus/internal/sass"
	"github.com/weakgpu/gpulitmus/internal/service"
)

// Core types re-exported from the implementation packages.
type (
	// Test is a GPU litmus test (Sec. 4.1 of the paper).
	Test = litmus.Test
	// TestBuilder builds tests programmatically.
	TestBuilder = litmus.Builder
	// Fence selects the membar inserted at a test's fence slots.
	Fence = litmus.Fence
	// Chip is a simulated GPU profile (Table 1).
	Chip = chip.Profile
	// Incant selects the stress incantations of Sec. 4.3.
	Incant = chip.Incant
	// Outcome is a harness run's histogram and observation count.
	Outcome = harness.Outcome
	// Model is a memory-consistency model (the paper's PTX model, SC,
	// RMO, or the refuted operational model).
	Model = core.Model
	// Verdict is a model's decision on a test's final condition.
	Verdict = core.Verdict
	// App is an end-to-end application study of Sec. 3.2.
	App = apps.App
	// CompileOptions configure the SASS compiler substrate (Sec. 4.4).
	CompileOptions = sass.Options
	// CompileLevel is the assembler optimisation level (-O0..-O3).
	CompileLevel = sass.Level
	// Violation is an optcheck conformance failure.
	Violation = optcheck.Violation
	// GeneratedTest pairs a diy cycle with its synthesised test.
	GeneratedTest = diy.GeneratedTest
	// Campaign declares a sweep matrix — tests × chips × incantations ×
	// fences × run budget — executed concurrently by Sweep.
	Campaign = campaign.Spec
	// CampaignJob is one expanded unit of campaign work.
	CampaignJob = campaign.Job
	// CampaignResult pairs a job with its outcome as it completes.
	CampaignResult = campaign.Result
	// SweepResult is a completed campaign's outcome matrix.
	SweepResult = campaign.Aggregate
	// Memo is a content-addressed cache of model analyses and verdicts:
	// identical (model, test) content pairs — whatever their names or
	// construction paths — are computed once. Safe for concurrent use.
	Memo = campaign.Memo
	// ServiceConfig parameterises the gpulitmusd HTTP service (in-flight
	// budget, per-request parallelism cap, verdict-cache size, persistent
	// store directory, and the replica fleet for consistent-hash
	// sharding).
	ServiceConfig = service.Config
	// ServiceClient is the Go client of a gpulitmusd service.
	ServiceClient = service.Client
	// ServiceStats is the /v1/stats payload: cache, store, peer,
	// admission and request counters.
	ServiceStats = service.StatsResponse
	// ServiceStoreStats / ServicePeerStats are the persistent-store and
	// fleet sections of ServiceStats (present when configured).
	ServiceStoreStats = service.StoreStats
	ServicePeerStats  = service.PeerStats
	// ServiceTestRef names a test in a service request: a paper test by
	// name or an inline Fig. 12 source.
	ServiceTestRef = service.TestRef
	// JudgeRequest/JudgeResult are the /v1/judge wire types.
	JudgeRequest = service.JudgeRequest
	JudgeResult  = service.JudgeResult
	// RunRequest/RunResponse are the /v1/run wire types.
	RunRequest  = service.RunRequest
	RunResponse = service.RunResponse
	// SweepRequest/SweepRow are the /v1/sweep wire types (NDJSON rows).
	SweepRequest = service.SweepRequest
	SweepRow     = service.SweepRow
	// RepairRequest/RepairResponse are the /v1/repair wire types.
	RepairRequest  = service.RepairRequest
	RepairResponse = service.RepairResponse
	// AnalysisReport is the static analyzer's full output for one test:
	// sorted diagnostics plus the prefilter verdict under each builtin
	// model (the gpulint payload).
	AnalysisReport = analysis.Report
	// AnalysisDiagnostic is one structured static finding (race, critical
	// cycle, scope mismatch, unused register, dead write, redundant fence,
	// unsatisfiable condition).
	AnalysisDiagnostic = analysis.Diagnostic
	// RepairResult is the fence-repair synthesis engine's answer: the
	// minimal judge-verified set of fence edits that makes the behaviour
	// Never, plus the full oracle-checked candidate ledger.
	RepairResult = analysis.RepairResult
	// RepairAction is one fence edit of a repair: an insertion before an
	// instruction or an in-place widening of an existing membar.
	RepairAction = analysis.RepairAction
	// RepairAttempt is one ledger entry: a candidate edit set and whether
	// the judge verified it.
	RepairAttempt = analysis.RepairAttempt
	// StaticVerdict is the three-valued prefilter answer. Unknown is
	// always safe: it only ever means "enumerate".
	StaticVerdict = analysis.StaticVerdict
	// StaticResult pairs a StaticVerdict with its justification.
	StaticResult = analysis.Result
)

// Fence levels (the rows of Figs. 3 and 4).
const (
	NoFence  = litmus.NoFence
	FenceCTA = litmus.FenceCTA
	FenceGL  = litmus.FenceGL
	FenceSys = litmus.FenceSys
)

// The three static prefilter verdicts.
const (
	StaticUnknown   = analysis.Unknown
	StaticForbidden = analysis.Forbidden
	StaticAllowed   = analysis.Allowed
)

// Assembler optimisation levels.
const (
	O0 = sass.O0
	O1 = sass.O1
	O2 = sass.O2
	O3 = sass.O3
)

// The chips of Table 1.
var (
	ChipGTX280 = chip.GTX280
	ChipGTX5   = chip.GTX540m
	ChipTesC   = chip.TeslaC2075
	ChipGTX6   = chip.GTX660
	ChipTitan  = chip.GTXTitan
	ChipGTX7   = chip.GTX750
	ChipHD6570 = chip.HD6570
	ChipHD7970 = chip.HD7970
)

// Chips returns every simulated chip in Table 1 order.
func Chips() []*Chip { return chip.All() }

// ChipByName resolves a chip by short or full name ("Titan", "GTX 540m").
func ChipByName(name string) (*Chip, error) { return chip.ByName(name) }

// DefaultIncant is memory stress + thread synchronisation + thread
// randomisation (Table 6 column 12).
func DefaultIncant() Incant { return chip.Default() }

// AllIncants enumerates the 16 incantation combinations in Table 6 order.
func AllIncants() []Incant { return chip.AllIncants() }

// ParseIncant parses the compact incantation syntax ("ms+ts+tr", "none").
func ParseIncant(s string) (Incant, error) { return chip.ParseIncant(s) }

// ParseTest parses the Fig. 12 litmus format.
func ParseTest(src string) (*Test, error) { return litmus.Parse(src) }

// MustParseTest parses src and panics on error.
func MustParseTest(src string) *Test { return litmus.MustParse(src) }

// NewTest starts a programmatic test builder.
func NewTest(name string) *TestBuilder { return litmus.NewTest(name) }

// TestByName returns a paper test by name ("coRR", "mp-L1", "cas-sl", ...).
func TestByName(name string) (*Test, error) { return litmus.ByName(name) }

// PaperTests returns every litmus test appearing in the paper's figures.
func PaperTests() []*Test { return litmus.PaperTests() }

// RunConfig parameterises a harness run.
type RunConfig struct {
	Chip   *Chip
	Incant *Incant // nil selects DefaultIncant
	Runs   int     // 0 selects the paper's 100k
	Seed   int64
}

// Run executes the test many times on the simulated chip under stress and
// returns the final-state histogram (Sec. 4.2).
func Run(t *Test, cfg RunConfig) (*Outcome, error) {
	inc := chip.Default()
	if cfg.Incant != nil {
		inc = *cfg.Incant
	}
	return harness.Run(t, harness.Config{Chip: cfg.Chip, Incant: inc, Runs: cfg.Runs, Seed: cfg.Seed})
}

// Sweep expands the campaign's matrix into jobs, runs them on a bounded
// work-stealing worker pool (default GOMAXPROCS workers), and returns the
// aggregated outcomes in matrix order. The aggregate is deterministic in
// the campaign spec alone: per-job seeds derive from Campaign.Seed, and
// worker count or completion order never changes a single byte of it.
func Sweep(c Campaign) (*SweepResult, error) { return campaign.Run(c) }

// SweepStream runs the campaign like Sweep but delivers each job's result
// as it completes (completion order). The channel closes after the last
// job; the caller must drain it. Individual outcomes are still
// deterministic per job — only delivery order varies.
func SweepStream(c Campaign) <-chan CampaignResult { return campaign.Stream(c) }

// PTXModel returns the paper's model of Nvidia GPUs (Figs. 15 and 16).
func PTXModel() *Model { return core.PTX() }

// SCModel returns sequential consistency.
func SCModel() *Model { return core.SC() }

// RMOModel returns plain SPARC RMO.
func RMOModel() *Model { return core.RMO() }

// OperationalModel returns the Sorensen et al. model the paper refutes
// (Sec. 6).
func OperationalModel() *Model { return core.SorensenOp() }

// Judge decides whether the test's final condition is allowed by the PTX
// model (herd-style simulation, Sec. 5). Candidate executions stream from
// the enumerator into verdict-only model evaluation; large enumerations fan
// out across the worker pool. The verdict (including the witness) is
// deterministic regardless of parallelism.
func Judge(t *Test) (*Verdict, error) { return core.Judge(core.PTX(), t) }

// JudgeUnder decides the final condition under an explicit model.
func JudgeUnder(m *Model, t *Test) (*Verdict, error) { return core.Judge(m, t) }

// JudgeUnderP is JudgeUnder with an explicit evaluation parallelism: 0
// auto-sizes to GOMAXPROCS (staying serial for small enumerations), 1
// forces serial, n > 1 forces n workers. Verdicts are identical for every
// choice.
func JudgeUnderP(m *Model, t *Test, parallelism int) (*Verdict, error) {
	return core.JudgeP(m, t, parallelism)
}

// ModelCovers reports whether the test is within the PTX model's documented
// scope (.cg accesses to global memory; Sec. 5.5) and, if not, why.
func ModelCovers(t *Test) (bool, string) { return core.Covers(t) }

// Analyze runs the static analyzer over the test: races, critical cycles,
// scope mismatches, idiom lint, and the prefilter verdict under every
// builtin model. Purely static — no enumeration, no simulation.
func Analyze(t *Test) *AnalysisReport { return analysis.Analyze(t) }

// StaticPrefilter statically judges the test under the model without
// enumerating. The soundness contract: StaticForbidden and StaticAllowed
// agree with the full Judge verdict (Witnesses == 0 / > 0 respectively);
// StaticUnknown means the analysis cannot decide and is always safe.
func StaticPrefilter(m *Model, t *Test) StaticResult { return m.Prefilter(t) }

// JudgeStatic is JudgeUnder with the static prefilter in front: decided
// verdicts skip enumeration entirely and carry Verdict.StaticSkipped.
func JudgeStatic(m *Model, t *Test) (*Verdict, error) { return core.JudgeStatic(m, t) }

// RepairTest synthesizes the minimal set of fence insertions or
// strengthenings that makes the test's exists-condition Never under the
// PTX model. Every suggested fix is judge-verified: candidates mutate the
// test through the litmus insertion API and are re-judged until the
// behaviour is forbidden, then greedily reduced so no single edit is
// removable. Deterministic for a given test and model.
func RepairTest(t *Test) (*RepairResult, error) { return core.Repair(core.PTX(), t) }

// RepairUnder is RepairTest under an explicit model.
func RepairUnder(m *Model, t *Test) (*RepairResult, error) { return core.Repair(m, t) }

// NewMemo returns an empty content-addressed verdict/analysis memo (see
// Memo); long-lived callers judging overlapping test sets share one.
func NewMemo() *Memo { return campaign.NewMemo() }

// Observability. A Trace rides a context through the pipeline and
// accumulates per-phase wall time (parse, prepare, enumerate, eval,
// merge, lookup) plus producer counters (combos, rf choices, pruned
// weight, memo hits, candidates, visited). The untraced path is free: a
// context without a trace yields a nil *Trace whose methods are no-op
// and allocation-free, so Judge and Run cost the same with tracing
// compiled in but unused.
type (
	// Trace is one request's observability collector (nil = disabled).
	Trace = obs.Trace
	// TraceSnapshot is a consistent copy of a Trace's timers and
	// counters; its PhaseTable renders the human-readable breakdown the
	// gpuherd -trace flag prints.
	TraceSnapshot = obs.Snapshot
	// CampaignCellEvent is one progress event from a campaign sink:
	// "start" when a cell's job begins, "finish"/"error" with the wall
	// time when it ends (Campaign.Sink receives them concurrently from
	// the worker pool).
	CampaignCellEvent = obs.CellEvent
)

// Campaign cell-event kinds, as CampaignCellEvent.Kind reports them.
const (
	CellStart  = obs.CellStart
	CellFinish = obs.CellFinish
	CellError  = obs.CellError
)

// NewTrace starts an enabled trace. An empty id draws a fresh random one
// (the same generator behind the service's X-Trace-Id).
func NewTrace(id string) *Trace {
	if id == "" {
		id = obs.NewID()
	}
	return obs.New(id)
}

// WithTrace attaches tr to ctx; pipeline stages invoked under the
// returned context (JudgeCtx paths, Memo.VerdictCtxP, ParseTestCtx)
// record their phases into it.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	return obs.NewContext(ctx, tr)
}

// TraceFromContext returns ctx's trace, or nil (a valid no-op receiver)
// when the context is untraced.
func TraceFromContext(ctx context.Context) *Trace { return obs.FromContext(ctx) }

// ParseTestCtx is ParseTest with the ctx's trace accruing the parse
// phase.
func ParseTestCtx(ctx context.Context, src string) (*Test, error) {
	return litmus.ParseCtx(ctx, src)
}

// GenerateTests enumerates litmus tests from the default diy edge pool
// (Sec. 4.1), up to maxEdges edges per cycle and maxTests tests.
func GenerateTests(maxEdges, maxTests int) []*GeneratedTest {
	return diy.Generate(diy.DefaultPool(), maxEdges, maxTests)
}

// TestFromEdges synthesises one litmus test from a relaxed-edge cycle such
// as "Rfe PodRR Fre PodWW" (append ":cta" to external edges for same-CTA
// placement).
func TestFromEdges(name, edges string) (*Test, error) {
	es, err := diy.ParseEdges(edges)
	if err != nil {
		return nil, err
	}
	return diy.Cycle(name, es)
}

// CheckCompile runs the Sec. 4.4 opcheck pipeline: embed the xor
// specification, compile to SASS under opts, and report conformance
// violations (empty means the test is safe to run).
func CheckCompile(t *Test, opts CompileOptions) ([]Violation, error) {
	return optcheck.Verify(t, opts)
}

// Apps returns the application studies of Sec. 3.2 (broken and repaired
// spin locks, work-stealing deque, transaction isolation).
func Apps() []*App { return apps.All() }

// Serve runs the gpulitmusd HTTP service on addr until ctx is cancelled:
// the judge/run/sweep pipeline behind a content-addressed, LRU-bounded
// verdict/outcome cache with singleflight deduplication and a bounded
// in-flight admission budget (429 + Retry-After beyond it). With
// cfg.StoreDir set the cache is backed by an append-only segment store
// (verdicts survive restarts); with cfg.Peers/cfg.Self set, fingerprints
// shard across the replica fleet by consistent hashing — fetch from the
// owning peer before computing, replicate computed records to the owner,
// degrade to local compute when a peer is down. GET /metrics exposes
// Prometheus-text counters for all of it. ready, when non-nil, receives
// the bound address before serving — pass addr "host:0" to let the
// kernel pick a free port. Verdict and outcome payloads are
// byte-identical to the gpuherd/gpulitmus CLIs for the same request.
func Serve(ctx context.Context, addr string, cfg ServiceConfig, ready func(net.Addr)) error {
	return service.Serve(ctx, addr, cfg, ready)
}

// NewClient returns a Go client for a gpulitmusd service at baseURL
// (e.g. "http://127.0.0.1:7980").
func NewClient(baseURL string) *ServiceClient { return service.NewClient(baseURL) }

// Fingerprint returns the content-addressed identity of a test — the hex
// SHA-256 of its canonicalised threads, declarations, memory map and final
// condition, independent of its name. Identical-content tests share cache
// entries in the service and the campaign memo.
func Fingerprint(t *Test) string { return t.Fingerprint() }

// GenerateKernel emits the CUDA-style kernel source the paper's tool
// produces for a test (Sec. 4.2): testing threads selected by global id,
// inline PTX, incantation loops for the rest. The deterministic (non-
// randomised) placement for the chip's geometry is used.
func GenerateKernel(t *Test, c *Chip, inc Incant) (string, error) {
	g := harness.DefaultGeometry(c)
	p, err := harness.Place(t, g, inc, nil)
	if err != nil {
		return "", err
	}
	return harness.GenerateKernel(t, g, inc, p)
}
