// Command promlint checks a Prometheus text-format exposition read from
// stdin against the dependency-free linter in internal/obs: HELP/TYPE
// present and ordered, family naming and suffix conventions, histogram
// bucket monotonicity and _count/_sum consistency, no duplicate samples.
// It exits non-zero listing every finding, so the CI daemon smoke test
// can gate the live /metrics page:
//
//	curl -s "$URL/metrics" | go run ./ci/promlint
package main

import (
	"fmt"
	"io"
	"os"

	"github.com/weakgpu/gpulitmus/internal/obs"
)

func main() {
	body, err := io.ReadAll(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "promlint:", err)
		os.Exit(1)
	}
	probs := obs.LintMetrics(string(body))
	for _, p := range probs {
		fmt.Fprintln(os.Stderr, "promlint:", p)
	}
	if len(probs) > 0 {
		os.Exit(1)
	}
	fmt.Println("promlint: exposition clean")
}
