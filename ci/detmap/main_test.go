package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sample is a module with one deliberate violation per critical-function
// kind, one sorted exemption, one ignore-directive exemption, and one
// range in a non-critical function that must not be flagged.
const sample = `package sample

import (
	"fmt"
	"sort"
)

type T struct{ m map[string]int }

func (t T) String() string {
	s := ""
	for k, v := range t.m { // finding: String method
		s += fmt.Sprintf("%s=%d;", k, v)
	}
	return s
}

func Fingerprint(m map[string]int) string {
	out := ""
	for k := range m { // finding: fingerprint path
		out += k
	}
	return out
}

func Canonical(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func renderCount(m map[string]bool) int {
	n := 0
	//detmap:ignore
	for range m {
		n++
	}
	return n
}

func irrelevant(m map[string]int) int {
	x := 0
	for _, v := range m {
		x += v
	}
	return x
}

func synthesizeRepair(m map[string]int) string {
	out := ""
	for k := range m { // finding: repair path
		out += k
	}
	return out
}
`

func TestCheckFindsMapRangesInCriticalFuncs(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module sample\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "sample.go"), []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)

	findings, err := check([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 3 {
		t.Fatalf("got %d findings, want 3:\n%s", len(findings), strings.Join(findings, "\n"))
	}
	var hasString, hasFingerprint, hasRepair bool
	for _, f := range findings {
		if strings.Contains(f, "func String") {
			hasString = true
		}
		if strings.Contains(f, "func Fingerprint") {
			hasFingerprint = true
		}
		if strings.Contains(f, "func synthesizeRepair") {
			hasRepair = true
		}
		if strings.Contains(f, "Canonical") || strings.Contains(f, "renderCount") || strings.Contains(f, "irrelevant") {
			t.Errorf("exempt or non-critical function flagged: %s", f)
		}
	}
	if !hasString || !hasFingerprint || !hasRepair {
		t.Errorf("missing expected findings (String %v, Fingerprint %v, synthesizeRepair %v):\n%s",
			hasString, hasFingerprint, hasRepair, strings.Join(findings, "\n"))
	}
}

// TestCheckCleanOnThisModule pins the repo itself clean: the CI step
// `go run ./ci/detmap ./...` must stay green.
func TestCheckCleanOnThisModule(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	// go test runs in this package's directory; reach the module root.
	findings, err := check([]string{"../../..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("module has detmap findings:\n%s", strings.Join(findings, "\n"))
	}
}
