// Command detmap is a repo-local vet pass: it flags `for … range` over a
// map inside determinism-critical functions — fingerprinting,
// canonicalization, golden/rendered output — where Go's randomized map
// iteration order would leak into bytes that tests and the
// content-addressed caches pin exactly.
//
// A function is determinism-critical when its name matches
// (?i)fingerprint|canonical|golden|render|repair, or it is a String
// method (the repo's CLI goldens are built from String renderings; repair
// synthesis and mutation must emit identical candidate orders and bytes
// on every run — suggested fixes are content-addressed and golden-pinned).
// Two escapes keep the pass precise:
//
//   - The collect-then-sort idiom is exempt: a range statement followed
//     (later in the same enclosing block) by a call into package sort is
//     the standard deterministic pattern and passes.
//   - An explicit `//detmap:ignore` comment on the line of (or the line
//     before) the range statement suppresses the finding, for ranges whose
//     order provably cannot escape (e.g. filling another map).
//
// Usage: go run ./ci/detmap ./...
//
// Only packages named on the command line are checked (dependencies are
// loaded for type information only). Test files are skipped: goldens are
// compared in tests, not produced by them. Exit status 1 means findings.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

func main() {
	findings, err := check(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "detmap:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "detmap: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// listedPackage is the subset of `go list -json` output detmap consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
}

// criticalName matches determinism-critical function names.
var criticalName = regexp.MustCompile(`(?i)fingerprint|canonical|golden|render|repair`)

// check runs the pass over the packages matched by patterns (default
// ./...) and returns the findings, sorted by position.
func check(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := listPackages(patterns)
	if err != nil {
		return nil, err
	}

	// Export data for every dependency, keyed by import path, feeds the
	// gc importer so the target packages type-check without x/tools.
	exports := make(map[string]string)
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("detmap: no export data for %q", path)
		}
		return os.Open(f)
	}

	fset := token.NewFileSet()
	var findings []string
	for _, p := range pkgs {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		fs, err := checkPackage(fset, p, lookup)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.ImportPath, err)
		}
		findings = append(findings, fs...)
	}
	sort.Strings(findings)
	return findings, nil
}

// listPackages shells out to the go command for the package graph with
// export data compiled (-export forces .a files into the build cache).
func listPackages(patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Dir,GoFiles,Export,DepOnly,Standard"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listedPackage
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// checkPackage parses and type-checks one package, then walks every
// determinism-critical function for map ranges.
func checkPackage(fset *token.FileSet, p *listedPackage, lookup func(string) (io.ReadCloser, error)) ([]string, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	info := &types.Info{Types: make(map[ast.Expr]types.TypeAndValue)}
	if _, err := conf.Check(p.ImportPath, fset, files, info); err != nil {
		return nil, err
	}

	var findings []string
	for _, f := range files {
		ignored := ignoreLines(fset, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !critical(fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := info.Types[rs.X].Type
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				pos := fset.Position(rs.Pos())
				if ignored[pos.Line] || ignored[pos.Line-1] {
					return true
				}
				if sortedAfter(fd.Body, rs) {
					return true
				}
				findings = append(findings,
					fmt.Sprintf("%s:%d: range over map in determinism-critical func %s (collect keys and sort, or //detmap:ignore)",
						relPath(pos.Filename), pos.Line, fd.Name.Name))
				return true
			})
		}
	}
	return findings, nil
}

// critical reports whether the function's output is determinism-critical:
// a name matching the pattern, or any String method.
func critical(fd *ast.FuncDecl) bool {
	if criticalName.MatchString(fd.Name.Name) {
		return true
	}
	return fd.Recv != nil && fd.Name.Name == "String"
}

// ignoreLines collects the lines carrying a //detmap:ignore comment.
func ignoreLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, "detmap:ignore") {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// sortedAfter reports whether some statement after the range statement
// (in any block of the enclosing function body that contains it) calls
// into package sort — the collect-then-sort idiom.
func sortedAfter(body *ast.BlockStmt, rs *ast.RangeStmt) bool {
	found := false
	var walk func(stmts []ast.Stmt)
	walk = func(stmts []ast.Stmt) {
		idx := -1
		for i, st := range stmts {
			if containsNode(st, rs) {
				idx = i
				break
			}
		}
		if idx < 0 {
			return
		}
		for _, st := range stmts[idx+1:] {
			if callsSort(st) {
				found = true
				return
			}
		}
		// The range may sit in a nested block (if/for/block); a sort call
		// after it inside that block counts too.
		if stmts[idx] != ast.Stmt(rs) {
			ast.Inspect(stmts[idx], func(n ast.Node) bool {
				if found {
					return false
				}
				if b, ok := n.(*ast.BlockStmt); ok && b != nil && containsNode(b, rs) {
					walk(b.List)
					return false
				}
				return true
			})
		}
	}
	walk(body.List)
	return found
}

// containsNode reports whether node target lies within root.
func containsNode(root ast.Node, target ast.Node) bool {
	if root == nil {
		return false
	}
	return root.Pos() <= target.Pos() && target.End() <= root.End()
}

// callsSort reports whether the statement contains any sort.* call.
func callsSort(st ast.Stmt) bool {
	calls := false
	ast.Inspect(st, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == "sort" {
			calls = true
			return false
		}
		return true
	})
	return calls
}

// relPath renders a finding path relative to the working directory.
func relPath(p string) string {
	wd, err := os.Getwd()
	if err != nil {
		return p
	}
	if rel, err := filepath.Rel(wd, p); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return p
}
