// Command jsonfield prints one string field of a JSON object read from
// stdin — a dependency-free stand-in for `jq -r .field` used by the CI
// daemon smoke test.
//
// Usage: curl -s …/v1/judge -d '…' | go run ./ci/jsonfield verdict
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: jsonfield <field> < object.json")
		os.Exit(2)
	}
	var obj map[string]any
	if err := json.NewDecoder(os.Stdin).Decode(&obj); err != nil {
		fmt.Fprintln(os.Stderr, "jsonfield:", err)
		os.Exit(1)
	}
	v, ok := obj[os.Args[1]]
	if !ok {
		fmt.Fprintf(os.Stderr, "jsonfield: no field %q\n", os.Args[1])
		os.Exit(1)
	}
	s, ok := v.(string)
	if !ok {
		fmt.Fprintf(os.Stderr, "jsonfield: field %q is not a string\n", os.Args[1])
		os.Exit(1)
	}
	fmt.Println(s)
}
