// Command jsonfield prints one scalar field of a JSON object read from
// stdin — a dependency-free stand-in for `jq -r .field` used by the CI
// daemon smoke tests. Strings print verbatim, booleans as true/false,
// and numbers without a trailing ".0" when integral, matching jq -r.
// A top-level JSON array (gpulint -fix -json emits one) selects its
// first element, matching `jq -r .[0].field`.
//
// Usage: curl -s …/v1/judge -d '…' | go run ./ci/jsonfield verdict
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: jsonfield <field> < object.json")
		os.Exit(2)
	}
	var doc any
	if err := json.NewDecoder(os.Stdin).Decode(&doc); err != nil {
		fmt.Fprintln(os.Stderr, "jsonfield:", err)
		os.Exit(1)
	}
	if arr, ok := doc.([]any); ok {
		if len(arr) == 0 {
			fmt.Fprintln(os.Stderr, "jsonfield: empty top-level array")
			os.Exit(1)
		}
		doc = arr[0]
	}
	obj, ok := doc.(map[string]any)
	if !ok {
		fmt.Fprintln(os.Stderr, "jsonfield: input is not a JSON object or array of objects")
		os.Exit(1)
	}
	v, ok := obj[os.Args[1]]
	if !ok {
		fmt.Fprintf(os.Stderr, "jsonfield: no field %q\n", os.Args[1])
		os.Exit(1)
	}
	switch x := v.(type) {
	case string:
		fmt.Println(x)
	case bool:
		fmt.Println(x)
	case float64:
		if x == float64(int64(x)) {
			fmt.Println(int64(x))
		} else {
			fmt.Println(strconv.FormatFloat(x, 'g', -1, 64))
		}
	default:
		fmt.Fprintf(os.Stderr, "jsonfield: field %q is not a scalar\n", os.Args[1])
		os.Exit(1)
	}
}
