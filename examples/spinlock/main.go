// Spinlock: reproduces Sec. 3.2.2 of the paper — the spin lock from
// Nvidia's CUDA by Example reads stale values without fences (cas-sl,
// Fig. 9), and the dot product built on it computes wrong results. The
// He–Yu lock of Fig. 10 additionally lets critical sections read values
// from the *future* (sl-future, Fig. 11).
package main

import (
	"fmt"
	"log"

	gpulitmus "github.com/weakgpu/gpulitmus"
)

func main() {
	chip := gpulitmus.ChipTitan

	fmt.Println("== cas-sl (Fig. 9): lock acquired, yet the critical section reads stale data ==")
	for _, name := range []string{"cas-sl", "cas-sl+membar.gls"} {
		test, err := gpulitmus.TestByName(name)
		if err != nil {
			log.Fatal(err)
		}
		out, err := gpulitmus.Run(test, gpulitmus.RunConfig{Chip: chip, Runs: 100000, Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		v, err := gpulitmus.Judge(test)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s observed %5d/100k on %s; model: allowed=%v\n",
			name, out.Matches, chip, v.Observable)
	}

	fmt.Println("\n== sl-future (Fig. 11): reading a value written by the next critical section ==")
	for _, name := range []string{"sl-future", "sl-future+fixed"} {
		test, err := gpulitmus.TestByName(name)
		if err != nil {
			log.Fatal(err)
		}
		out, err := gpulitmus.Run(test, gpulitmus.RunConfig{Chip: chip, Runs: 100000, Seed: 11})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s observed %5d/100k on %s\n", name, out.Matches, chip)
	}

	fmt.Println("\n== end-to-end: the CUDA by Example dot product (Sec. 3.2.2) ==")
	for _, app := range gpulitmus.Apps() {
		if app.Name != "dot-product" && app.Name != "dot-product+fences" {
			continue
		}
		rep, err := app.Run(chip, gpulitmus.DefaultIncant(), 20000, 13)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(rep)
	}
	fmt.Println("\nNvidia's erratum confirmed the fix: __threadfence() after lock() and")
	fmt.Println("before unlock() — the +fences variants above are silent.")
}
