// Generate: walk through the diy edge language (Sec. 4.1) — synthesise
// classic idioms from cycles, enumerate a corpus, and cross-check each
// generated weak outcome against both the PTX model and the simulator.
package main

import (
	"fmt"
	"log"

	gpulitmus "github.com/weakgpu/gpulitmus"
)

func main() {
	fmt.Println("== classic idioms from relaxed-edge cycles ==")
	cycles := []struct{ name, edges string }{
		{"mp from edges", "Rfe PodRR Fre PodWW"},
		{"sb from edges", "Fre PodWR Fre PodWR"},
		{"lb from edges", "Rfe PodRW Rfe PodRW"},
		{"coRR from edges (intra-CTA)", "Rfe:cta PosRR Fre:cta"},
		{"mp with dependencies", "Rfe DpAddrdR Fre PodWW"},
	}
	for _, c := range cycles {
		test, err := gpulitmus.TestFromEdges("", c.edges)
		if err != nil {
			log.Fatal(err)
		}
		v, err := gpulitmus.Judge(test)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-30s -> %-40s model: allowed=%v\n", c.name, test.Name, v.Observable)
	}

	fmt.Println("\n== one generated test in full ==")
	test, err := gpulitmus.TestFromEdges("generated-mp", "Rfe MembarGLdRR Fre MembarGLdWW")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(test)

	fmt.Println("== enumerated corpus: model verdict vs simulated Titan ==")
	agreeing := 0
	corpus := gpulitmus.GenerateTests(4, 20)
	for _, g := range corpus {
		v, err := gpulitmus.Judge(g.Test)
		if err != nil {
			log.Fatal(err)
		}
		out, err := gpulitmus.Run(g.Test, gpulitmus.RunConfig{Chip: gpulitmus.ChipTitan, Runs: 4000, Seed: 5})
		if err != nil {
			log.Fatal(err)
		}
		sound := !out.Observed() || v.Observable
		if sound {
			agreeing++
		}
		fmt.Printf("  %-44s allowed=%-5v observed=%4d/4000 sound=%v\n",
			g.Test.Name, v.Observable, out.Matches, sound)
	}
	fmt.Printf("\n%d/%d tests sound (every observation allowed by the model) — the\nSec. 5.4 validation in miniature.\n", agreeing, len(corpus))
}
