// Quickstart: parse a litmus test in the Fig. 12 format, run it 100k times
// on a simulated GTX Titan under stress incantations, and ask the paper's
// PTX memory model whether the weak outcome is allowed.
package main

import (
	"fmt"
	"log"

	gpulitmus "github.com/weakgpu/gpulitmus"
)

const src = `GPU_PTX SB
{0:.reg .s32 r0; 0:.reg .s32 r2;
 0:.reg .b64 r1 = x; 0:.reg .b64 r3 = y;
 1:.reg .s32 r0; 1:.reg .s32 r2;
 1:.reg .b64 r1 = y; 1:.reg .b64 r3 = x;}
 T0                | T1                ;
 mov.s32 r0,1      | mov.s32 r0,1      ;
 st.cg.s32 [r1],r0 | st.cg.s32 [r1],r0 ;
 ld.cg.s32 r2,[r3] | ld.cg.s32 r2,[r3] ;
ScopeTree(grid(cta(warp T0)) (cta(warp T1)))
x: global, y: global
exists (0:r2=0 /\ 1:r2=0)
`

func main() {
	test, err := gpulitmus.ParseTest(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Running the store-buffering test of Fig. 12 (inter-CTA, global memory):")
	fmt.Println(test)

	out, err := gpulitmus.Run(test, gpulitmus.RunConfig{Chip: gpulitmus.ChipTitan, Runs: 100000, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)

	v, err := gpulitmus.Judge(test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(v)
	fmt.Println("\nThe weak outcome is both observed on the simulated Titan and allowed")
	fmt.Println("by the PTX model — hardware and model agree.")
}
