// Modelcheck: herd-style exploration with the paper's PTX model (Sec. 5):
// message passing under each fence scope, intra- and inter-CTA, plus the
// Sec. 6 refutation of the operational model of Sorensen et al.
package main

import (
	"fmt"
	"log"

	gpulitmus "github.com/weakgpu/gpulitmus"
)

func main() {
	fmt.Println("== mp under the PTX model (RMO per scope, Figs. 15-16) ==")
	for _, f := range []gpulitmus.Fence{gpulitmus.NoFence, gpulitmus.FenceCTA, gpulitmus.FenceGL, gpulitmus.FenceSys} {
		name := "mp"
		if f != gpulitmus.NoFence {
			name = "mp+" + string(f) + "s"
		}
		test, err := gpulitmus.TestByName(name)
		if err != nil {
			// Not every fence variant is in the library; build it.
			test, err = gpulitmus.TestFromEdges(name, mpEdges(f))
			if err != nil {
				log.Fatal(err)
			}
		}
		v, err := gpulitmus.Judge(test)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s\n", v)
	}
	fmt.Println("\n  membar.cta does not order across CTAs, so inter-CTA mp stays allowed")
	fmt.Println("  under it; membar.gl (and .sys) forbid it — the Fig. 14 cycle.")

	fmt.Println("\n== Sec. 6: the operational model is unsound ==")
	test, err := gpulitmus.TestByName("lb+membar.ctas")
	if err != nil {
		log.Fatal(err)
	}
	ptxV, err := gpulitmus.JudgeUnder(gpulitmus.PTXModel(), test)
	if err != nil {
		log.Fatal(err)
	}
	opV, err := gpulitmus.JudgeUnder(gpulitmus.OperationalModel(), test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  PTX model:         %s\n", ptxV)
	fmt.Printf("  operational model: %s\n", opV)
	fmt.Println("  The paper observed lb+membar.ctas 586/100k on GTX Titan: the")
	fmt.Println("  operational model forbids an observable behaviour and is unsound;")
	fmt.Println("  the PTX model allows it.")

	fmt.Println("\n== witness execution for coRR (allowed by RMO-llh) ==")
	corr, err := gpulitmus.TestByName("coRR")
	if err != nil {
		log.Fatal(err)
	}
	v, err := gpulitmus.Judge(corr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(v)
	fmt.Println(v.Witness)
}

func mpEdges(f gpulitmus.Fence) string {
	switch f {
	case gpulitmus.FenceCTA:
		return "Rfe MembarCTAdRR Fre MembarCTAdWW"
	case gpulitmus.FenceGL:
		return "Rfe MembarGLdRR Fre MembarGLdWW"
	case gpulitmus.FenceSys:
		return "Rfe MembarSYSdRR Fre MembarSYSdWW"
	default:
		return "Rfe PodRR Fre PodWW"
	}
}
