// Deque: reproduces Sec. 3.2.1 — the Cederman–Tsigas work-stealing deque
// from GPU Computing Gems assumes no weak memory behaviour and loses tasks:
// a steal can read a stale task payload (dlb-mp, Fig. 7) or read a value
// pushed by a later pop (dlb-lb, Fig. 8).
package main

import (
	"fmt"
	"log"

	gpulitmus "github.com/weakgpu/gpulitmus"
)

func main() {
	fmt.Println("== distilled litmus tests (Figs. 7 and 8) on the Tesla C2075 ==")
	for _, name := range []string{"dlb-mp", "dlb-mp+membar.gls", "dlb-lb", "dlb-lb+membar.gls"} {
		test, err := gpulitmus.TestByName(name)
		if err != nil {
			log.Fatal(err)
		}
		out, err := gpulitmus.Run(test, gpulitmus.RunConfig{Chip: gpulitmus.ChipTesC, Runs: 100000, Seed: 3})
		if err != nil {
			log.Fatal(err)
		}
		v, err := gpulitmus.Judge(test)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s observed %5d/100k; model: allowed=%v\n", name, out.Matches, v.Observable)
	}

	fmt.Println("\n== whole deque interaction (owner pushes, thief steals) ==")
	for _, app := range gpulitmus.Apps() {
		if app.Name != "work-stealing-deque" && app.Name != "work-stealing-deque+fences" {
			continue
		}
		rep, err := app.Run(gpulitmus.ChipTesC, gpulitmus.DefaultIncant(), 50000, 99)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(rep)
	}
	fmt.Println("\nA violation is a steal that claimed a task (CAS succeeded) whose payload")
	fmt.Println("it read stale — the deque silently loses work. The (+)-fenced variant of")
	fmt.Println("Fig. 6 repairs it.")
}
